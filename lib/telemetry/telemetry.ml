(** Process-global instrumentation sink.  See telemetry.mli. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* The clock yields microseconds directly: under the tick clock the
   readings are small integers, which float subtraction differences
   exactly — a seconds-based clock scaled by 1e6 would round and smear
   one-tick durations across two adjacent histogram buckets. *)
let wall_clock () = Unix.gettimeofday () *. 1e6

let clock = ref wall_clock

(* Spans read a clock of their own.  Under the wall clock the two are
   the same source; under the tick clock they are independent streams,
   because span creation is conditional on the domain (suppressed while
   a worker buffers metrics): if span bookkeeping consumed work-tier
   ticks, a timed region whose body opens a span would measure three
   ticks sequentially and one tick on a worker — exactly the
   jobs-dependence the tick clock exists to rule out. *)
let span_clock = ref wall_clock

let now_us () = !clock ()
let span_now_us () = !span_clock ()

let set_clock c =
  clock := c;
  span_clock := c

let install_tick_clock ?(step_us = 1.0) () =
  (* One tick counter per domain: a clock read on a worker domain must
     not perturb main-domain timestamps (or vice versa), so that a timed
     region's duration depends only on the clock reads made *inside* the
     region on its own domain.  That is what makes attributed-timing
     histogram samples identical at every --jobs value: a region with no
     nested reads always measures exactly one tick, wherever it ran. *)
  let tick_stream () =
    let key = Domain.DLS.new_key (fun () -> ref (-.step_us)) in
    fun () ->
      let t = Domain.DLS.get key in
      t := !t +. step_us;
      !t
  in
  clock := tick_stream ();
  span_clock := tick_stream ()

let use_wall_clock () =
  clock := wall_clock;
  span_clock := wall_clock

(* The pool's queue-wait/task-latency instrumentation always reads the
   wall clock, never the pluggable one: pool metrics are runtime-tier
   (excluded from the cross-jobs oracle), and under the tick clock any
   pool read on a worker domain would advance that domain's tick counter
   and perturb the work-tier timed regions running there.  Top-level
   effect: runs when the telemetry library is linked (every executable
   here). *)
let () = Util.Pool.set_clock wall_clock

(* ------------------------------------------------------------------ *)
(* Sink state                                                          *)
(* ------------------------------------------------------------------ *)

type attr = string * string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_tid : int;
  ev_attrs : attr list;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_depth : int;
  sp_tid : int;
  mutable sp_attrs : attr list;
  mutable sp_closed : bool;
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let on = ref false
let events_rev : event list ref = ref []
let open_depth = ref 0
let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, float) Hashtbl.t = Hashtbl.create 16
let hists_tbl : (string, Util.Histogram.t) Hashtbl.t = Hashtbl.create 32

(** GC cost per named phase (deltas of [Gc.quick_stat] around the
    phase body), summed when a phase repeats. *)
type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
}

let gc_tbl : (string, gc_delta) Hashtbl.t = Hashtbl.create 16

(* Per-domain metric buffer.  When a buffer is installed (pool workers
   running under [collect_metrics]) counter adds and histogram samples
   go to the buffer without touching the global mutex, and span creation
   is suppressed — the caller merges buffers deterministically in
   submission order (counter merge is integer addition, histogram merge
   is per-bucket addition; both commutative and associative, so merged
   state is identical to the sequential run).  Buffers nest: an inner
   [collect_metrics] shadows the outer one and [absorb_metrics] feeds
   whichever sink is active. *)
type buffer = {
  buf_counters : (string, int) Hashtbl.t;
  buf_hists : (string, Util.Histogram.t) Hashtbl.t;
}

let local_buf : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_enabled b =
  on := b;
  (* the pool's flight-recorder gate follows the sink switch, so the
     telemetry-overhead experiment compares truly-off against fully-on *)
  Util.Pool.set_metrics b

let enabled () = !on

let reset () =
  locked (fun () ->
      events_rev := [];
      open_depth := 0;
      Hashtbl.reset counters_tbl;
      Hashtbl.reset gauges_tbl;
      Hashtbl.reset hists_tbl;
      Hashtbl.reset gc_tbl)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let inert_span =
  { sp_name = ""; sp_cat = ""; sp_start_us = 0.0; sp_depth = 0; sp_tid = 0;
    sp_attrs = []; sp_closed = true }

let start_span ?(cat = "adcheck") ?(attrs = []) name =
  if (not !on) || Domain.DLS.get local_buf <> None then inert_span
  else
    locked (fun () ->
        let sp =
          { sp_name = name; sp_cat = cat; sp_start_us = span_now_us ();
            sp_depth = !open_depth; sp_tid = (Domain.self () :> int);
            sp_attrs = attrs; sp_closed = false }
        in
        incr open_depth;
        sp)

let add_attr sp k v = if not sp.sp_closed then sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]

let end_span ?(attrs = []) sp =
  if not sp.sp_closed then
    locked (fun () ->
        sp.sp_closed <- true;
        open_depth := Stdlib.max 0 (!open_depth - 1);
        let stop = span_now_us () in
        events_rev :=
          { ev_name = sp.sp_name; ev_cat = sp.sp_cat;
            ev_start_us = sp.sp_start_us;
            ev_dur_us = Stdlib.max 0.0 (stop -. sp.sp_start_us);
            ev_depth = sp.sp_depth; ev_tid = sp.sp_tid;
            ev_attrs = sp.sp_attrs @ attrs }
          :: !events_rev)

let with_span ?cat ?attrs name f =
  if not !on then f ()
  else begin
    let sp = start_span ?cat ?attrs name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let bump tbl name by =
  Hashtbl.replace tbl name
    (by + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let add name by =
  if !on && by <> 0 then
    match Domain.DLS.get local_buf with
    | Some b -> bump b.buf_counters name by
    | None -> locked (fun () -> bump counters_tbl name by)

let incr ?(by = 1) name = add name by

let set_gauge name v = if !on then locked (fun () -> Hashtbl.replace gauges_tbl name v)

let max_gauge name v =
  if !on then
    locked (fun () ->
        match Hashtbl.find_opt gauges_tbl name with
        | Some old when old >= v -> ()
        | _ -> Hashtbl.replace gauges_tbl name v)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let hist_of tbl name =
  match Hashtbl.find_opt tbl name with
  | Some h -> h
  | None ->
    let h = Util.Histogram.create () in
    Hashtbl.add tbl name h;
    h

let observe name v =
  if !on then
    match Domain.DLS.get local_buf with
    | Some b -> Util.Histogram.observe (hist_of b.buf_hists name) v
    | None -> locked (fun () -> Util.Histogram.observe (hist_of hists_tbl name) v)

let timed name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    Fun.protect ~finally:(fun () -> observe name (now_us () -. t0)) f
  end

(* GC sampling around a named phase: quick_stat deltas (minor/major/
   promoted words, collection and compaction counts) accumulated per
   phase name, plus the phase wall time as a "phase.<name>_us" histogram
   sample.  Both are runtime telemetry — worker placement and allocation
   rates legitimately vary with --jobs — and live outside the
   deterministic oracle sections of the metrics export. *)
let gc_phase name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    let a = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let b = Gc.quick_stat () in
        observe ("phase." ^ name ^ "_us") (now_us () -. t0);
        let d =
          { gd_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
            gd_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
            gd_major_words = b.Gc.major_words -. a.Gc.major_words;
            gd_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
            gd_major_collections = b.Gc.major_collections - a.Gc.major_collections;
            gd_compactions = b.Gc.compactions - a.Gc.compactions }
        in
        locked (fun () ->
            let d =
              match Hashtbl.find_opt gc_tbl name with
              | None -> d
              | Some p ->
                { gd_minor_words = p.gd_minor_words +. d.gd_minor_words;
                  gd_promoted_words = p.gd_promoted_words +. d.gd_promoted_words;
                  gd_major_words = p.gd_major_words +. d.gd_major_words;
                  gd_minor_collections =
                    p.gd_minor_collections + d.gd_minor_collections;
                  gd_major_collections =
                    p.gd_major_collections + d.gd_major_collections;
                  gd_compactions = p.gd_compactions + d.gd_compactions }
            in
            Hashtbl.replace gc_tbl name d))
      f
  end

(* ------------------------------------------------------------------ *)
(* Per-domain aggregation and the parallel map veneer                  *)
(* ------------------------------------------------------------------ *)

type batch = {
  batch_counters : (string * int) list;
  batch_hists : (string * Util.Histogram.t) list;
}

let collect_metrics f =
  let prev = Domain.DLS.get local_buf in
  let buf = { buf_counters = Hashtbl.create 32; buf_hists = Hashtbl.create 8 } in
  Domain.DLS.set local_buf (Some buf);
  let finish () = Domain.DLS.set local_buf prev in
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  match f () with
  | v ->
    finish ();
    (v, { batch_counters = sorted buf.buf_counters;
          batch_hists = sorted buf.buf_hists })
  | exception e ->
    finish ();
    raise e

let absorb_metrics b =
  List.iter (fun (k, n) -> add k n) b.batch_counters;
  if !on then
    List.iter
      (fun (name, h) ->
        match Domain.DLS.get local_buf with
        | Some buf ->
          Util.Histogram.merge_into ~into:(hist_of buf.buf_hists name) h
        | None ->
          locked (fun () ->
              Util.Histogram.merge_into ~into:(hist_of hists_tbl name) h))
      b.batch_hists

let parallel_map ?chunk_size f xs =
  match Util.Pool.global () with
  | None -> List.map f xs
  | Some pool ->
    let tagged =
      Util.Pool.map_chunked ?chunk_size pool
        (fun x -> collect_metrics (fun () -> f x))
        xs
    in
    List.map
      (fun (y, batch) ->
        absorb_metrics batch;
        y)
      tagged

(* ------------------------------------------------------------------ *)
(* Reading the sink                                                    *)
(* ------------------------------------------------------------------ *)

let events () =
  let evs = locked (fun () -> List.rev !events_rev) in
  List.stable_sort
    (fun a b ->
      let c = compare a.ev_start_us b.ev_start_us in
      if c <> 0 then c else compare a.ev_depth b.ev_depth)
    evs

let counter name =
  locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt counters_tbl name))

let counters () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl []))

type counter_snapshot = (string * int) list

let snapshot_counters () = counters ()

let counters_since snap =
  List.filter_map
    (fun (k, v) ->
      let d = v - Option.value ~default:0 (List.assoc_opt k snap) in
      if d <> 0 then Some (k, d) else None)
    (counters ())

let gauges () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges_tbl []))

let histograms () =
  locked (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun k h acc -> (k, Util.Histogram.copy h) :: acc)
           hists_tbl []))

let histogram name =
  locked (fun () -> Option.map Util.Histogram.copy (Hashtbl.find_opt hists_tbl name))

let gc_phases () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k d acc -> (k, d) :: acc) gc_tbl []))

(* Runtime-tier metric names: legitimately dependent on --jobs and
   scheduling (worker placement, queue waits, GC pressure, phase wall
   time under span suppression).  Everything else is work-tier and must
   be byte-identical across jobs under the tick clock — the differential
   tests compare [metrics_json ~runtime:false] outputs directly. *)
let is_runtime_metric name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "pool." || has_prefix "gc." || has_prefix "phase."

let top_counters ~prefix n =
  let p = String.length prefix in
  let matching =
    List.filter_map
      (fun (k, v) ->
        if String.length k > p && String.sub k 0 p = prefix then
          Some (String.sub k p (String.length k - p), v)
        else None)
      (counters ())
  in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (b : int) a) matching
  in
  List.filteri (fun i _ -> i < n) sorted

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let chrome_trace () =
  (* Export order is (ts, tid, name): ties on timestamp (common under the
     tick clock, where distinct domains read distinct counters) resolve
     by thread id then name, so two runs of the same workload serialize
     events identically and traces diff cleanly. *)
  let evs =
    List.stable_sort
      (fun a b ->
        let c = compare a.ev_start_us b.ev_start_us in
        if c <> 0 then c
        else
          let c = compare a.ev_tid b.ev_tid in
          if c <> 0 then c else compare a.ev_name b.ev_name)
      (events ())
  in
  let base =
    match evs with [] -> 0.0 | e :: _ -> e.ev_start_us
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d"
           (json_escape e.ev_name) (json_escape e.ev_cat)
           (json_num (e.ev_start_us -. base))
           (json_num e.ev_dur_us) e.ev_tid);
      if e.ev_attrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          e.ev_attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    (counters ());
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (json_num v)))
    (gauges ());
  Buffer.add_string buf "}}}\n";
  Buffer.contents buf

let write_chrome_trace ~path =
  let oc = open_out path in
  output_string oc (chrome_trace ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* adcheck-metrics/1                                                   *)
(* ------------------------------------------------------------------ *)

let hist_json h =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\":%d,\"zeros\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":["
       (Util.Histogram.count h) (Util.Histogram.zeros h)
       (json_num (Util.Histogram.sum h))
       (json_num (Util.Histogram.min_value h))
       (json_num (Util.Histogram.max_value h))
       (json_num (Util.Histogram.p50 h))
       (json_num (Util.Histogram.p90 h))
       (json_num (Util.Histogram.p99 h)));
  List.iteri
    (fun i (idx, c) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" idx c))
    (Util.Histogram.buckets h);
  Buffer.add_string b "]}";
  Buffer.contents b

let obj_of b ~name entries render =
  Buffer.add_string b (Printf.sprintf "\"%s\":{" name);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape k) (render v)))
    entries;
  Buffer.add_char b '}'

(* The machine-readable flight-recorder export.  [runtime:false] yields
   only the deterministic sections — schema, work-tier counters and
   histograms — whose bytes the jobs differential compares; the default
   adds the "runtime" section (jobs, gauges, runtime-tier histograms,
   per-phase GC deltas, pool stats), which varies across --jobs and
   wall-clock runs by design. *)
let metrics_json ?(runtime = true) () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"adcheck-metrics/1\",";
  let work_counters, _ = List.partition (fun (k, _) -> not (is_runtime_metric k)) (counters ()) in
  let work_hists, run_hists =
    List.partition (fun (k, _) -> not (is_runtime_metric k)) (histograms ())
  in
  obj_of b ~name:"counters" work_counters string_of_int;
  Buffer.add_char b ',';
  obj_of b ~name:"histograms" work_hists hist_json;
  if runtime then begin
    Buffer.add_string b ",\"runtime\":{";
    Buffer.add_string b
      (Printf.sprintf "\"jobs\":%d," (Util.Pool.default_jobs ()));
    obj_of b ~name:"gauges" (gauges ()) json_num;
    Buffer.add_char b ',';
    obj_of b ~name:"histograms" run_hists hist_json;
    Buffer.add_char b ',';
    obj_of b ~name:"gc" (gc_phases ()) (fun d ->
        Printf.sprintf
          "{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d}"
          (json_num d.gd_minor_words) (json_num d.gd_promoted_words)
          (json_num d.gd_major_words) d.gd_minor_collections
          d.gd_major_collections d.gd_compactions);
    (match Util.Pool.global_stats () with
     | None -> ()
     | Some st ->
       Buffer.add_string b
         (Printf.sprintf
            ",\"pool\":{\"jobs\":%d,\"submitted\":%d,\"completed\":%d,\"inline\":%d,\"since_us\":%s,\"workers\":["
            st.Util.Pool.st_jobs st.Util.Pool.st_submitted
            st.Util.Pool.st_completed st.Util.Pool.st_inline
            (json_num st.Util.Pool.st_since_us));
       List.iteri
         (fun i (id, tasks, busy) ->
           if i > 0 then Buffer.add_char b ',';
           Buffer.add_string b
             (Printf.sprintf "{\"id\":%d,\"tasks\":%d,\"busy_us\":%s}" id tasks
                (json_num busy)))
         st.Util.Pool.st_workers;
       Buffer.add_string b "],\"queue_wait\":";
       Buffer.add_string b (hist_json st.Util.Pool.st_queue_wait);
       Buffer.add_string b ",\"task_run\":";
       Buffer.add_string b (hist_json st.Util.Pool.st_task_run);
       Buffer.add_char b '}');
    Buffer.add_char b '}'
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_metrics ?runtime ~path () =
  let oc = open_out path in
  output_string oc (metrics_json ?runtime ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Summary tables                                                      *)
(* ------------------------------------------------------------------ *)

let span_summary () =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.ev_name with
      | Some (n, total, mx) ->
        Stdlib.incr n;
        total := !total +. e.ev_dur_us;
        mx := Stdlib.max !mx e.ev_dur_us
      | None -> Hashtbl.add tbl e.ev_name (ref 1, ref e.ev_dur_us, ref e.ev_dur_us))
    (events ());
  let rows =
    Hashtbl.fold (fun name (n, total, mx) acc -> (name, !n, !total, !mx) :: acc) tbl []
  in
  List.stable_sort
    (fun (n1, _, t1, _) (n2, _, t2, _) ->
      let c = compare (t2 : float) t1 in
      if c <> 0 then c else compare n1 n2)
    rows

let hot_fn_prefix = "interp.fn."

let ms us = Printf.sprintf "%.3f" (us /. 1e3)

let stats_tables () =
  let spans = span_summary () in
  let span_tbl =
    List.fold_left
      (fun t (name, n, total, mx) ->
        Util.Table.add_row t
          [ name; string_of_int n; ms total;
            ms (total /. float_of_int (Stdlib.max 1 n)); ms mx ])
      (Util.Table.make ~title:"telemetry: spans"
         ~header:[ "span"; "count"; "total ms"; "mean ms"; "max ms" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right;
                   Util.Table.Right; Util.Table.Right ]
         ())
      spans
  in
  let plain_counters =
    List.filter
      (fun (k, _) ->
        not (String.length k > String.length hot_fn_prefix
             && String.sub k 0 (String.length hot_fn_prefix) = hot_fn_prefix))
      (counters ())
  in
  let counter_tbl =
    List.fold_left
      (fun t (k, v) -> Util.Table.add_row t [ k; string_of_int v ])
      (Util.Table.make ~title:"telemetry: counters"
         ~header:[ "counter"; "value" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      plain_counters
  in
  let hot = top_counters ~prefix:hot_fn_prefix 15 in
  let hot_tbl =
    List.fold_left
      (fun t (fn, n) -> Util.Table.add_row t [ fn; string_of_int n ])
      (Util.Table.make ~title:"telemetry: hot functions (statements interpreted)"
         ~header:[ "function"; "statements" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      hot
  in
  let gauge_tbl =
    List.fold_left
      (fun t (k, v) -> Util.Table.add_row t [ k; json_num v ])
      (Util.Table.make ~title:"telemetry: gauges" ~header:[ "gauge"; "value" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      (gauges ())
  in
  (* Attributed-timing view, hottest first: answers "which rule /
     scenario / function dominates" straight from --stats. *)
  let hist_rows =
    List.stable_sort
      (fun (_, a) (_, b) ->
        compare (Util.Histogram.sum b) (Util.Histogram.sum a))
      (histograms ())
  in
  let hist_tbl =
    List.fold_left
      (fun t (name, h) ->
        Util.Table.add_row t
          [ name; string_of_int (Util.Histogram.count h);
            json_num (Util.Histogram.p50 h); json_num (Util.Histogram.p90 h);
            json_num (Util.Histogram.p99 h);
            json_num (Util.Histogram.max_value h);
            json_num (Util.Histogram.sum h) ])
      (Util.Table.make ~title:"telemetry: histograms"
         ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max"; "total" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right;
                   Util.Table.Right; Util.Table.Right; Util.Table.Right;
                   Util.Table.Right ]
         ())
      hist_rows
  in
  List.filter
    (fun (t : Util.Table.t) -> t.Util.Table.rows <> [])
    [ span_tbl; counter_tbl; hist_tbl; hot_tbl; gauge_tbl ]

let render_stats () =
  String.concat "\n" (List.map Util.Table.render (stats_tables ()))
