(** Process-global instrumentation sink.  See telemetry.mli. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let wall_clock () = Unix.gettimeofday ()

let clock = ref wall_clock

let now_us () = !clock () *. 1e6

let set_clock c = clock := c

let install_tick_clock ?(step_us = 1.0) () =
  let t = ref (-.step_us) in
  clock :=
    fun () ->
      t := !t +. step_us;
      !t /. 1e6

let use_wall_clock () = clock := wall_clock

(* ------------------------------------------------------------------ *)
(* Sink state                                                          *)
(* ------------------------------------------------------------------ *)

type attr = string * string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_tid : int;
  ev_attrs : attr list;
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_depth : int;
  sp_tid : int;
  mutable sp_attrs : attr list;
  mutable sp_closed : bool;
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let on = ref false
let events_rev : event list ref = ref []
let open_depth = ref 0
let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

(* Per-domain counter buffer.  When a buffer is installed (pool workers
   running under [collect_counters]) counter adds go to the buffer
   without touching the global mutex, and span creation is suppressed —
   the caller merges buffers deterministically in submission order.
   Buffers nest: an inner [collect_counters] shadows the outer one and
   [absorb_counters] feeds the outer buffer. *)
let local_counters : (string, int) Hashtbl.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_enabled b = on := b
let enabled () = !on

let reset () =
  locked (fun () ->
      events_rev := [];
      open_depth := 0;
      Hashtbl.reset counters_tbl;
      Hashtbl.reset gauges_tbl)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let inert_span =
  { sp_name = ""; sp_cat = ""; sp_start_us = 0.0; sp_depth = 0; sp_tid = 0;
    sp_attrs = []; sp_closed = true }

let start_span ?(cat = "adcheck") ?(attrs = []) name =
  if (not !on) || Domain.DLS.get local_counters <> None then inert_span
  else
    locked (fun () ->
        let sp =
          { sp_name = name; sp_cat = cat; sp_start_us = now_us ();
            sp_depth = !open_depth; sp_tid = (Domain.self () :> int);
            sp_attrs = attrs; sp_closed = false }
        in
        incr open_depth;
        sp)

let add_attr sp k v = if not sp.sp_closed then sp.sp_attrs <- sp.sp_attrs @ [ (k, v) ]

let end_span ?(attrs = []) sp =
  if not sp.sp_closed then
    locked (fun () ->
        sp.sp_closed <- true;
        open_depth := Stdlib.max 0 (!open_depth - 1);
        let stop = now_us () in
        events_rev :=
          { ev_name = sp.sp_name; ev_cat = sp.sp_cat;
            ev_start_us = sp.sp_start_us;
            ev_dur_us = Stdlib.max 0.0 (stop -. sp.sp_start_us);
            ev_depth = sp.sp_depth; ev_tid = sp.sp_tid;
            ev_attrs = sp.sp_attrs @ attrs }
          :: !events_rev)

let with_span ?cat ?attrs name f =
  if not !on then f ()
  else begin
    let sp = start_span ?cat ?attrs name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

let bump tbl name by =
  Hashtbl.replace tbl name
    (by + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let add name by =
  if !on && by <> 0 then
    match Domain.DLS.get local_counters with
    | Some tbl -> bump tbl name by
    | None -> locked (fun () -> bump counters_tbl name by)

let incr ?(by = 1) name = add name by

let set_gauge name v = if !on then locked (fun () -> Hashtbl.replace gauges_tbl name v)

let max_gauge name v =
  if !on then
    locked (fun () ->
        match Hashtbl.find_opt gauges_tbl name with
        | Some old when old >= v -> ()
        | _ -> Hashtbl.replace gauges_tbl name v)

(* ------------------------------------------------------------------ *)
(* Per-domain aggregation and the parallel map veneer                  *)
(* ------------------------------------------------------------------ *)

let collect_counters f =
  let prev = Domain.DLS.get local_counters in
  let tbl = Hashtbl.create 32 in
  Domain.DLS.set local_counters (Some tbl);
  let finish () = Domain.DLS.set local_counters prev in
  match f () with
  | v ->
    finish ();
    (v, List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []))
  | exception e ->
    finish ();
    raise e

let absorb_counters kvs = List.iter (fun (k, n) -> add k n) kvs

let parallel_map ?chunk_size f xs =
  match Util.Pool.global () with
  | None -> List.map f xs
  | Some pool ->
    let tagged =
      Util.Pool.map_chunked ?chunk_size pool
        (fun x -> collect_counters (fun () -> f x))
        xs
    in
    List.map
      (fun (y, kvs) ->
        absorb_counters kvs;
        y)
      tagged

(* ------------------------------------------------------------------ *)
(* Reading the sink                                                    *)
(* ------------------------------------------------------------------ *)

let events () =
  let evs = locked (fun () -> List.rev !events_rev) in
  List.stable_sort
    (fun a b ->
      let c = compare a.ev_start_us b.ev_start_us in
      if c <> 0 then c else compare a.ev_depth b.ev_depth)
    evs

let counter name =
  locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt counters_tbl name))

let counters () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl []))

type counter_snapshot = (string * int) list

let snapshot_counters () = counters ()

let counters_since snap =
  List.filter_map
    (fun (k, v) ->
      let d = v - Option.value ~default:0 (List.assoc_opt k snap) in
      if d <> 0 then Some (k, d) else None)
    (counters ())

let gauges () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges_tbl []))

let top_counters ~prefix n =
  let p = String.length prefix in
  let matching =
    List.filter_map
      (fun (k, v) ->
        if String.length k > p && String.sub k 0 p = prefix then
          Some (String.sub k p (String.length k - p), v)
        else None)
      (counters ())
  in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (b : int) a) matching
  in
  List.filteri (fun i _ -> i < n) sorted

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let chrome_trace () =
  let evs = events () in
  let base =
    match evs with [] -> 0.0 | e :: _ -> e.ev_start_us
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d"
           (json_escape e.ev_name) (json_escape e.ev_cat)
           (json_num (e.ev_start_us -. base))
           (json_num e.ev_dur_us) e.ev_tid);
      if e.ev_attrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          e.ev_attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    (counters ());
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (json_num v)))
    (gauges ());
  Buffer.add_string buf "}}}\n";
  Buffer.contents buf

let write_chrome_trace ~path =
  let oc = open_out path in
  output_string oc (chrome_trace ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Summary tables                                                      *)
(* ------------------------------------------------------------------ *)

let span_summary () =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.ev_name with
      | Some (n, total, mx) ->
        Stdlib.incr n;
        total := !total +. e.ev_dur_us;
        mx := Stdlib.max !mx e.ev_dur_us
      | None -> Hashtbl.add tbl e.ev_name (ref 1, ref e.ev_dur_us, ref e.ev_dur_us))
    (events ());
  let rows =
    Hashtbl.fold (fun name (n, total, mx) acc -> (name, !n, !total, !mx) :: acc) tbl []
  in
  List.stable_sort
    (fun (n1, _, t1, _) (n2, _, t2, _) ->
      let c = compare (t2 : float) t1 in
      if c <> 0 then c else compare n1 n2)
    rows

let hot_fn_prefix = "interp.fn."

let ms us = Printf.sprintf "%.3f" (us /. 1e3)

let stats_tables () =
  let spans = span_summary () in
  let span_tbl =
    List.fold_left
      (fun t (name, n, total, mx) ->
        Util.Table.add_row t
          [ name; string_of_int n; ms total;
            ms (total /. float_of_int (Stdlib.max 1 n)); ms mx ])
      (Util.Table.make ~title:"telemetry: spans"
         ~header:[ "span"; "count"; "total ms"; "mean ms"; "max ms" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right;
                   Util.Table.Right; Util.Table.Right ]
         ())
      spans
  in
  let plain_counters =
    List.filter
      (fun (k, _) ->
        not (String.length k > String.length hot_fn_prefix
             && String.sub k 0 (String.length hot_fn_prefix) = hot_fn_prefix))
      (counters ())
  in
  let counter_tbl =
    List.fold_left
      (fun t (k, v) -> Util.Table.add_row t [ k; string_of_int v ])
      (Util.Table.make ~title:"telemetry: counters"
         ~header:[ "counter"; "value" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      plain_counters
  in
  let hot = top_counters ~prefix:hot_fn_prefix 15 in
  let hot_tbl =
    List.fold_left
      (fun t (fn, n) -> Util.Table.add_row t [ fn; string_of_int n ])
      (Util.Table.make ~title:"telemetry: hot functions (statements interpreted)"
         ~header:[ "function"; "statements" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      hot
  in
  let gauge_tbl =
    List.fold_left
      (fun t (k, v) -> Util.Table.add_row t [ k; json_num v ])
      (Util.Table.make ~title:"telemetry: gauges" ~header:[ "gauge"; "value" ]
         ~aligns:[ Util.Table.Left; Util.Table.Right ] ())
      (gauges ())
  in
  List.filter
    (fun (t : Util.Table.t) -> t.Util.Table.rows <> [])
    [ span_tbl; counter_tbl; hot_tbl; gauge_tbl ]

let render_stats () =
  String.concat "\n" (List.map Util.Table.render (stats_tables ()))
