(** Dependency-free instrumentation: monotonic-clock spans, counters,
    gauges, histograms, runtime (GC/pool) telemetry, and exporters —
    the flight recorder.

    The library keeps one process-global, mutex-guarded sink.  All
    recording entry points are no-ops until {!set_enabled}[ true], so
    instrumented hot paths pay a single boolean test when telemetry is
    off.  Three exporters read the sink: {!chrome_trace} emits Chrome
    trace-event JSON (loadable in [chrome://tracing] / Perfetto),
    {!metrics_json} emits the machine-readable [adcheck-metrics/1]
    record ([adcheck bench-diff] consumes it), and {!render_stats}
    prints summary tables via {!Util.Table}.

    Metric names split into two tiers.  Work-tier data (everything not
    prefixed ["pool."], ["gc."] or ["phase."]) must be byte-identical
    across [--jobs] values under the tick clock — that is the
    differential-testing oracle.  Runtime-tier data legitimately varies
    with scheduling and lives only in the "runtime" section of the
    metrics export.

    The clock is pluggable so tests can make every timestamp
    deterministic ({!install_tick_clock}). *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(** Current time in microseconds from the active clock. *)
val now_us : unit -> float

(** Install a clock returning microseconds (monotonically
    non-decreasing).  Microseconds, not seconds: the tick clock's small
    integer readings subtract exactly, so a one-tick region is exactly
    one tick on every domain. *)
val set_clock : (unit -> float) -> unit

(** Deterministic test clock: each reading advances by [step_us]
    (default 1.0) starting from 0 — per domain.  Giving every domain its
    own tick counter makes a timed region's duration a pure function of
    the clock reads inside the region on its own domain, so
    attributed-timing histogram samples are identical at every [--jobs]
    value.  Spans get an independent tick stream: span creation is
    suppressed on buffering workers, so if spans consumed work-tier
    ticks, a timed body that opens a span would measure differently
    sequentially than on a worker. *)
val install_tick_clock : ?step_us:float -> unit -> unit

(** Restore the default wall clock. *)
val use_wall_clock : unit -> unit

(* ------------------------------------------------------------------ *)
(* Sink control                                                        *)
(* ------------------------------------------------------------------ *)

(** Opens/closes the sink; also mirrors the switch into
    {!Util.Pool.set_metrics}, so pool instrumentation records exactly
    when the flight recorder does. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Drop every recorded event, counter, gauge, histogram and GC phase
    record (leaves the enabled flag and clock untouched). *)
val reset : unit -> unit

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type attr = string * string

(** An open span handle; {!end_span} closes it.  Handles of a disabled
    sink are inert. *)
type span

val start_span : ?cat:string -> ?attrs:attr list -> string -> span
val add_attr : span -> string -> string -> unit
val end_span : ?attrs:attr list -> span -> unit

(** [with_span name f] runs [f] inside a span; the span is closed even
    if [f] raises. *)
val with_span : ?cat:string -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

val incr : ?by:int -> string -> unit
val add : string -> int -> unit

val set_gauge : string -> float -> unit

(** Keep the maximum of all reported values. *)
val max_gauge : string -> float -> unit

(* ------------------------------------------------------------------ *)
(* Histograms and attributed timing                                    *)
(* ------------------------------------------------------------------ *)

(** Record a sample into the named {!Util.Histogram} (buffered on the
    active per-domain collection when one is installed, else the global
    sink).  Use integer-valued samples for work-tier metrics so the
    float [sum] stays exact under any merge association. *)
val observe : string -> float -> unit

(** [timed name f] runs [f] and records its duration (microseconds from
    the active clock) as a sample of histogram [name] — the attributed
    per-rule / per-function / per-scenario timing hook.  Place timed
    regions innermost (inside spans): under the tick clock a region with
    no nested clock reads measures exactly one tick on any domain, so
    the samples are jobs-independent. *)
val timed : string -> (unit -> 'a) -> 'a

(** GC cost of a named phase: deltas of [Gc.quick_stat] around the
    body, summed when the phase repeats. *)
type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
}

(** [gc_phase name f] runs [f], accumulating its GC delta under [name]
    and its wall time as a ["phase.<name>_us"] histogram sample.  Both
    are runtime-tier (excluded from the cross-jobs oracle): phase wall
    time differs between the sequential path (spans read the clock) and
    the pooled path (spans suppressed on workers). *)
val gc_phase : string -> (unit -> 'a) -> 'a

(** Recorded GC phases, sorted by name. *)
val gc_phases : unit -> (string * gc_delta) list

(** All histograms (copies), sorted by name. *)
val histograms : unit -> (string * Util.Histogram.t) list

(** One histogram by exact name (a copy). *)
val histogram : string -> Util.Histogram.t option

(** True for runtime-tier metric names (["pool."], ["gc."] or
    ["phase."] prefixed): excluded from the deterministic sections of
    {!metrics_json}. *)
val is_runtime_metric : string -> bool

(* ------------------------------------------------------------------ *)
(* Per-domain aggregation and parallel mapping                         *)
(* ------------------------------------------------------------------ *)

(** Metrics collected on one domain: counters and histograms, each
    sorted by name.  Counter merge is integer addition and histogram
    merge is per-bucket addition — both commutative and associative, so
    absorbing batches in submission order reproduces the sequential
    sink state exactly. *)
type batch = {
  batch_counters : (string * int) list;
  batch_hists : (string * Util.Histogram.t) list;
}

(** [collect_metrics f] runs [f] with counter increments and histogram
    samples redirected to a fresh per-domain buffer (no global-sink
    mutex traffic) and returns the buffered batch alongside [f]'s
    result.  While the buffer is active span creation is suppressed —
    worker domains contribute counters and samples only, keeping the
    event list a single-domain record.  Nests: an inner collection
    shadows the outer one, and {!absorb_metrics} feeds whichever sink
    is active. *)
val collect_metrics : (unit -> 'a) -> 'a * batch

(** Merge a collected batch into the active sink (the global one, or
    the enclosing collection buffer). *)
val absorb_metrics : batch -> unit

(** Order-preserving parallel map over {!Util.Pool.global}.  Each
    element's counters and histogram samples are buffered on its worker
    domain via {!collect_metrics} and merged on the calling domain in
    input order, so the final sink state is identical to a sequential
    run.  When the pool default is 1 job this *is* [List.map f xs] —
    the exact sequential oracle the differential tests compare
    against. *)
val parallel_map : ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list

(* ------------------------------------------------------------------ *)
(* Reading the sink                                                    *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at the time the span opened *)
  ev_tid : int;
      (** domain id the span ran on — the pipelined audit phases record
          their spans from worker domains, so a Chrome trace of a
          [--jobs N] run shows the phases on separate rows, overlapping
          in time *)
  ev_attrs : attr list;
}

(** Completed spans, sorted by start time then depth (parents first). *)
val events : unit -> event list

val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Snapshot/diff for attributing counters to a region of the run (the
    bench harness snapshots around each experiment so one experiment's
    JSON record never absorbs counters contributed by another). *)
type counter_snapshot

val snapshot_counters : unit -> counter_snapshot

(** Counters that changed since the snapshot, with their deltas,
    sorted by name. *)
val counters_since : counter_snapshot -> (string * int) list

val gauges : unit -> (string * float) list

(** Counters under [prefix], prefix stripped, largest first, top [n]. *)
val top_counters : prefix:string -> int -> (string * int) list

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(** Chrome trace-event JSON: complete ("ph":"X") events with timestamps
    rebased to the earliest span and sorted by (ts, tid, name) so equal
    workloads serialize identically; counters and gauges ride along
    under "otherData". *)
val chrome_trace : unit -> string

val write_chrome_trace : path:string -> unit

(** The [adcheck-metrics/1] record: schema tag, work-tier counters and
    histograms (deterministic across [--jobs] under the tick clock),
    and — unless [runtime:false] — a "runtime" section with the jobs
    value, gauges, runtime-tier histograms, per-phase GC deltas and
    pool stats.  [runtime:false] is the byte-comparable differential
    oracle. *)
val metrics_json : ?runtime:bool -> unit -> string

val write_metrics : ?runtime:bool -> path:string -> unit -> unit

(** Per-name aggregation: (name, count, total_us, max_us), largest
    total first. *)
val span_summary : unit -> (string * int * float * float) list

(** Summary tables: span aggregation, counters, histograms (hottest
    total first — the "which rule/scenario is hot" view), interpreter
    hot-function profile, gauges — empty tables are omitted. *)
val stats_tables : unit -> Util.Table.t list

val render_stats : unit -> string

(** JSON string escaping (shared with the bench JSON writer). *)
val json_escape : string -> string
