(** Dependency-free instrumentation: monotonic-clock spans, counters,
    gauges, and exporters.

    The library keeps one process-global, mutex-guarded sink.  All
    recording entry points are no-ops until {!set_enabled}[ true], so
    instrumented hot paths pay a single boolean test when telemetry is
    off.  Two exporters read the sink: {!chrome_trace} emits Chrome
    trace-event JSON (loadable in [chrome://tracing] / Perfetto) and
    {!render_stats} prints summary tables via {!Util.Table}.

    The clock is pluggable so tests can make every timestamp
    deterministic ({!install_tick_clock}). *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(** Current time in microseconds from the active clock. *)
val now_us : unit -> float

(** Install a clock returning seconds (monotonically non-decreasing). *)
val set_clock : (unit -> float) -> unit

(** Deterministic test clock: each reading advances by [step_us]
    (default 1.0) starting from 0. *)
val install_tick_clock : ?step_us:float -> unit -> unit

(** Restore the default wall clock. *)
val use_wall_clock : unit -> unit

(* ------------------------------------------------------------------ *)
(* Sink control                                                        *)
(* ------------------------------------------------------------------ *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** Drop every recorded event, counter and gauge (leaves the enabled
    flag and clock untouched). *)
val reset : unit -> unit

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type attr = string * string

(** An open span handle; {!end_span} closes it.  Handles of a disabled
    sink are inert. *)
type span

val start_span : ?cat:string -> ?attrs:attr list -> string -> span
val add_attr : span -> string -> string -> unit
val end_span : ?attrs:attr list -> span -> unit

(** [with_span name f] runs [f] inside a span; the span is closed even
    if [f] raises. *)
val with_span : ?cat:string -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)
(* ------------------------------------------------------------------ *)

val incr : ?by:int -> string -> unit
val add : string -> int -> unit

val set_gauge : string -> float -> unit

(** Keep the maximum of all reported values. *)
val max_gauge : string -> float -> unit

(* ------------------------------------------------------------------ *)
(* Per-domain aggregation and parallel mapping                         *)
(* ------------------------------------------------------------------ *)

(** [collect_counters f] runs [f] with counter increments redirected to
    a fresh per-domain buffer (no global-sink mutex traffic) and returns
    the buffered counters, sorted by name, alongside [f]'s result.
    While the buffer is active span creation is suppressed — worker
    domains contribute counters only, keeping the event list a
    single-domain record.  Nests: an inner collection shadows the outer
    one, and {!absorb_counters} feeds whichever sink is active. *)
val collect_counters : (unit -> 'a) -> 'a * (string * int) list

(** Add a collected counter batch into the active sink (the global one,
    or the enclosing collection buffer). *)
val absorb_counters : (string * int) list -> unit

(** Order-preserving parallel map over {!Util.Pool.global}.  Each
    element's counter increments are buffered on its worker domain via
    {!collect_counters} and merged on the calling domain in input order,
    so the final counter values are identical to a sequential run.  When
    the pool default is 1 job this *is* [List.map f xs] — the exact
    sequential oracle the differential tests compare against. *)
val parallel_map : ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list

(* ------------------------------------------------------------------ *)
(* Reading the sink                                                    *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at the time the span opened *)
  ev_tid : int;
      (** domain id the span ran on — the pipelined audit phases record
          their spans from worker domains, so a Chrome trace of a
          [--jobs N] run shows the phases on separate rows, overlapping
          in time *)
  ev_attrs : attr list;
}

(** Completed spans, sorted by start time then depth (parents first). *)
val events : unit -> event list

val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Snapshot/diff for attributing counters to a region of the run (the
    bench harness snapshots around each experiment so one experiment's
    JSON record never absorbs counters contributed by another). *)
type counter_snapshot

val snapshot_counters : unit -> counter_snapshot

(** Counters that changed since the snapshot, with their deltas,
    sorted by name. *)
val counters_since : counter_snapshot -> (string * int) list

val gauges : unit -> (string * float) list

(** Counters under [prefix], prefix stripped, largest first, top [n]. *)
val top_counters : prefix:string -> int -> (string * int) list

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(** Chrome trace-event JSON: complete ("ph":"X") events with timestamps
    rebased to the earliest span; counters and gauges ride along under
    "otherData". *)
val chrome_trace : unit -> string

val write_chrome_trace : path:string -> unit

(** Per-name aggregation: (name, count, total_us, max_us), largest
    total first. *)
val span_summary : unit -> (string * int * float * float) list

(** Summary tables: span aggregation, counters, interpreter
    hot-function profile, gauges — empty tables are omitted. *)
val stats_tables : unit -> Util.Table.t list

val render_stats : unit -> string

(** JSON string escaping (shared with the bench JSON writer). *)
val json_escape : string -> string
