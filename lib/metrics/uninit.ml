(** Read-before-write detection for local variables.

    Historically a one-pass syntactic walk with a documented
    false-positive class: a variable assigned on *both* arms of an
    [if]/[else] before its first read was still reported, because
    branch assignments were never treated as definite.  The analysis now
    delegates to the flow-sensitive definite-assignment pass in
    {!Dataflow.Analyses} (CFG + worklist fixpoint), which joins branch
    facts by intersection and therefore gets that case right, while
    keeping this module's historical API: arrays and class-typed locals
    stay exempt, taking a variable's address still counts as an
    assignment (out-parameter and cudaMalloc idioms), and each variable
    is reported at most once, at its earliest offending read. *)

type finding = {
  var : string;
  decl_loc : Cfront.Loc.t;
  use_loc : Cfront.Loc.t;
  in_function : string;
}

let of_func (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> []
  | Some _ ->
    let cfg = Dataflow.Cfg.of_func fn in
    List.map
      (fun (u : Dataflow.Analyses.uninit_finding) ->
        {
          var = u.Dataflow.Analyses.u_var;
          decl_loc = u.Dataflow.Analyses.u_decl_loc;
          use_loc = u.Dataflow.Analyses.u_use_loc;
          in_function = u.Dataflow.Analyses.u_function;
        })
      (Dataflow.Analyses.uninit_reads cfg)

let of_functions fns = List.concat_map of_func fns
