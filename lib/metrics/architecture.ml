(** Software-architecture metrics for ISO 26262-6 Table 3: component
    sizes, interface sizes, coupling between components, cohesion within
    components, hierarchy, and the (statically visible) scheduling and
    interrupt properties. *)

type component = {
  name : string;
  loc : int;
  n_files : int;
  n_functions : int;
  interface_size : int;  (** functions visible outside the component *)
  fan_out : int;  (** distinct other components this one calls into *)
  fan_in : int;
  cohesion : float;  (** intra-component call edges / all call edges from it *)
  max_interface_params : int;
  uses_interrupts : bool;
  uses_threads : bool;
}

let interrupt_markers = [ "signal"; "sigaction"; "irq_handler"; "attachInterrupt" ]
let thread_markers = [ "pthread_create"; "std::thread"; "thread"; "async" ]

let calls_marker markers (fns : Cfront.Ast.func list) =
  List.exists
    (fun fn ->
      let found = ref false in
      Cfront.Ast.iter_exprs_of_func
        (fun e ->
          match e.Cfront.Ast.e with
          | Cfront.Ast.Call ({ e = Cfront.Ast.Id name; _ }, _) when List.mem name markers ->
            found := true
          | _ -> ())
        fn;
      !found)
    fns

(** Module of a qualified function name, given the per-module function
    sets. *)
let build ~(parsed : Cfront.Project.parsed) =
  Telemetry.with_span ~cat:"metrics" "metrics.architecture" @@ fun () ->
  let module_names = Cfront.Project.module_names parsed.Cfront.Project.project in
  let per_module =
    List.map
      (fun m ->
        let pfs = Cfront.Project.parsed_files_of_module parsed m in
        (m, pfs, Cfront.Project.defined_functions pfs))
      module_names
  in
  let owner = Hashtbl.create 256 in
  List.iter
    (fun (m, _, fns) ->
      List.iter (fun fn -> Hashtbl.replace owner (Cfront.Ast.qualified_name fn) m) fns)
    per_module;
  let all_fns = List.concat_map (fun (_, _, fns) -> fns) per_module in
  let graph = Cfront.Callgraph.build all_fns in
  let cross_edges =
    List.filter_map
      (fun (a, b) ->
        match (Hashtbl.find_opt owner a, Hashtbl.find_opt owner b) with
        | Some ma, Some mb -> Some (ma, mb)
        | _ -> None)
      graph.Cfront.Callgraph.edges
  in
  List.map
    (fun (m, pfs, fns) ->
      let loc = (Loc_metrics.of_files pfs).Loc_metrics.physical in
      let outgoing = List.filter (fun (a, _) -> a = m) cross_edges in
      let intra = List.length (List.filter (fun (_, b) -> b = m) outgoing) in
      let inter_targets =
        List.sort_uniq compare
          (List.filter_map (fun (_, b) -> if b <> m then Some b else None) outgoing)
      in
      let incoming_sources =
        List.sort_uniq compare
          (List.filter_map
             (fun (a, b) -> if b = m && a <> m then Some a else None)
             cross_edges)
      in
      (* interface: non-static free functions + public methods *)
      let interface_fns =
        List.filter
          (fun (fn : Cfront.Ast.func) ->
            not (List.mem Cfront.Ast.Q_static fn.Cfront.Ast.f_quals))
          fns
      in
      {
        name = m;
        loc;
        n_files = List.length pfs;
        n_functions = List.length fns;
        interface_size = List.length interface_fns;
        fan_out = List.length inter_targets;
        fan_in = List.length incoming_sources;
        cohesion =
          (let total = List.length outgoing in
           if total = 0 then 1.0 else float_of_int intra /. float_of_int total);
        max_interface_params =
          List.fold_left
            (fun acc (fn : Cfront.Ast.func) ->
              Stdlib.max acc (List.length fn.Cfront.Ast.f_params))
            0 interface_fns;
        uses_interrupts = calls_marker interrupt_markers fns;
        uses_threads = calls_marker thread_markers fns;
      })
    per_module

(** Hierarchy depth of a module: maximum namespace nesting observed. *)
let namespace_depth (pfs : Cfront.Project.parsed_file list) =
  let rec depth_of_tops d tops =
    List.fold_left
      (fun acc top ->
        match top with
        | Cfront.Ast.Tnamespace (_, inner) -> Stdlib.max acc (depth_of_tops (d + 1) inner)
        | _ -> Stdlib.max acc d)
      d tops
  in
  List.fold_left
    (fun acc pf -> Stdlib.max acc (depth_of_tops 0 pf.Cfront.Project.tu.Cfront.Ast.tops))
    0 pfs
