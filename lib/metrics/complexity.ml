(** McCabe cyclomatic complexity, computed the way Lizard computes it:
    CC = 1 + number of decision points, where decision points are [if],
    [while], [do-while], [for] (with a condition), [case] labels, ternary
    [?:], and the short-circuit operators [&&] and [||].

    The paper's Figure 3 buckets functions into the classic ranges
    1-10 (low), 11-20 (moderate), 21-50 (risky), >50 (unstable). *)

type bucket = Low | Moderate | Risky | Unstable

let bucket_of_cc cc =
  if cc <= 10 then Low
  else if cc <= 20 then Moderate
  else if cc <= 50 then Risky
  else Unstable

let bucket_name = function
  | Low -> "1-10"
  | Moderate -> "11-20"
  | Risky -> "21-50"
  | Unstable -> ">50"

let decisions_in_expr expr =
  let n = ref 0 in
  Cfront.Ast.iter_exprs_of_expr
    (fun e ->
      match e.Cfront.Ast.e with
      | Cfront.Ast.Binary ((Cfront.Ast.Land | Cfront.Ast.Lor), _, _) -> incr n
      | Cfront.Ast.Ternary _ -> incr n
      | _ -> ())
    expr;
  !n

(** [count_short_circuit:false] gives plain McCabe (control statements
    only), the older convention; the default counts [&&]/[||]/[?:] the way
    Lizard and most modern tools do. *)
let of_stmt ?(count_short_circuit = true) body =
  let n = ref 0 in
  let count_expr e =
    if count_short_circuit then n := !n + decisions_in_expr e
  in
  Cfront.Ast.iter_stmts
    (fun s ->
      match s.Cfront.Ast.s with
      | Cfront.Ast.Sif { cond; _ } -> incr n; count_expr cond
      | Cfront.Ast.Swhile (c, _) | Cfront.Ast.Sdo_while (_, c) ->
        incr n;
        count_expr c
      | Cfront.Ast.Sfor { cond; init; update; _ } ->
        (match cond with
         | Some c -> incr n; count_expr c
         | None -> ());
        (match init with
         | Cfront.Ast.Fi_expr e -> count_expr e
         | Cfront.Ast.Fi_decl ds ->
           List.iter (fun d -> Option.iter count_expr d.Cfront.Ast.v_init) ds
         | Cfront.Ast.Fi_empty -> ());
        Option.iter count_expr update
      | Cfront.Ast.Scase _ -> incr n
      | Cfront.Ast.Sexpr e -> count_expr e
      | Cfront.Ast.Sreturn (Some e) -> count_expr e
      | Cfront.Ast.Sdecl ds ->
        List.iter (fun d -> Option.iter count_expr d.Cfront.Ast.v_init) ds
      | Cfront.Ast.Sswitch (e, _) -> count_expr e
      | _ -> ())
    body;
  !n + 1

let of_func ?(count_short_circuit = true) (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> 1
  | Some body -> of_stmt ~count_short_circuit body

(** Maximum control-structure nesting depth of a body — the other face of
    "low complexity": deeply nested code resists review and MC/DC
    testing even at moderate CC. *)
let nesting_depth body =
  let rec depth (s : Cfront.Ast.stmt) =
    match s.Cfront.Ast.s with
    | Cfront.Ast.Sblock ss -> List.fold_left (fun a t -> Stdlib.max a (depth t)) 0 ss
    | Cfront.Ast.Sif { then_; else_; _ } ->
      1
      + Stdlib.max (depth then_)
          (match else_ with Some e -> depth e | None -> 0)
    | Cfront.Ast.Swhile (_, b) | Cfront.Ast.Sdo_while (b, _)
    | Cfront.Ast.Sfor { body = b; _ } | Cfront.Ast.Sswitch (_, b) ->
      1 + depth b
    | Cfront.Ast.Slabel (_, b) -> depth b
    | Cfront.Ast.Stry { body = b; catches } ->
      1
      + List.fold_left (fun a (_, h) -> Stdlib.max a (depth h)) (depth b) catches
    | _ -> 0
  in
  depth body

let nesting_of_func (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with None -> 0 | Some body -> nesting_depth body

type func_cc = { fn : Cfront.Ast.func; cc : int }

let of_functions ?(count_short_circuit = true) fns =
  let ccs =
    List.map
      (fun fn -> { fn; cc = of_func ~count_short_circuit fn })
      (List.filter (fun f -> f.Cfront.Ast.f_body <> None) fns)
  in
  Telemetry.add "metrics.cc_functions" (List.length ccs);
  ccs

type module_summary = {
  modname : string;
  n_functions : int;
  loc : int;
  cc_mean : float;
  cc_max : int;
  over_10 : int;
  over_20 : int;
  over_50 : int;
}

let summarize ~modname ~loc fns =
  let ccs = of_functions fns in
  let values = List.map (fun c -> c.cc) ccs in
  {
    modname;
    n_functions = List.length ccs;
    loc;
    cc_mean = Util.Stats.mean (List.map float_of_int values);
    cc_max = List.fold_left Stdlib.max 0 values;
    over_10 = List.length (List.filter (fun c -> c > 10) values);
    over_20 = List.length (List.filter (fun c -> c > 20) values);
    over_50 = List.length (List.filter (fun c -> c > 50) values);
  }
