(** One-pass compiler from the shared Cfront AST to {!Bytecode}.

    [compile tus] lowers every function with a body (in
    [Interp.load_tu]'s load order) to a {!Bytecode.program}.  The result
    is immutable: compile once per shared parse and reuse it across
    scenarios, entry points and worker domains. *)

val compile : Cfront.Ast.tu list -> Bytecode.program
