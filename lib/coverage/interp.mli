(** Interpreter for the C/C++/CUDA subset with coverage hooks.

    Executes parsed translation units directly.  CUDA kernels launched
    with [f<<<grid, block>>>(args)] run on the CPU, sequentially over the
    grid with [threadIdx]/[blockIdx] bound per iteration — the cuda4cpu
    approach the paper uses to measure GPU code coverage with CPU tooling.

    Memory is cell-addressed and checked: out-of-bounds and
    use-after-free accesses abort the run with a memory fault, which the
    fault-injection harness exploits as a dynamic defensive-programming
    probe. *)

exception Runtime_error of string * Cfront.Loc.t
exception Step_limit_exceeded

(** Event hooks fired during execution; the {!Collector} aggregates them
    into coverage reports. *)
type hooks = {
  on_stmt : int -> unit;  (** executable statement id *)
  on_decision : int -> (int * bool option) list -> bool -> unit;
      (** decision eid, (condition eid, value-if-evaluated) vector, outcome *)
  on_switch : int -> int -> unit;  (** switch sid, clause index taken *)
  on_call : string -> unit;  (** qualified function name *)
  on_kernel_launch : string -> grid:int -> block:int -> unit;
  on_function_stmt : string -> unit;
      (** qualified name of the enclosing function, fired once per
          executed statement — drives the telemetry hot-function
          profile *)
}

val null_hooks : hooks

(** [telemetry_hooks ?base ()] layers global-telemetry recording
    (statement / call / kernel-launch counters, per-function statement
    counts under ["interp.fn."]) over [base].  Returns [base] unchanged
    when telemetry is disabled at construction time. *)
val telemetry_hooks : ?base:hooks -> unit -> hooks

(** Interpreter state: store, globals, functions, struct layouts. *)
type env

(** [create ()] makes a fresh environment.  [max_steps] bounds total
    evaluation steps across all runs in this environment (default 5e7). *)
val create : ?hooks:hooks -> ?max_steps:int -> unit -> env

(** Load a unit's records, enums, globals and functions into the
    environment (global initializers run immediately). *)
val load_tu : env -> Cfront.Ast.tu -> unit

(** [run env tus ~entry ~args] loads [tus] then calls [entry].  Returns
    the entry's return value, or a diagnostic for runtime errors, memory
    faults, uncaught C++ exceptions, or step-limit exhaustion.  An
    environment survives errors and can run further entry points. *)
val run :
  env ->
  Cfront.Ast.tu list ->
  entry:string ->
  args:Value.t list ->
  (Value.t, string) result

(** [run_entries env ~entries] calls each entry in order in the same
    (already loaded) environment, pairing each with its result.  A
    failing entry does not stop the rest — the fault-injection and
    gap-probe scenarios rely on the coverage accumulated before a
    fault. *)
val run_entries :
  env -> entries:string list -> (string * (Value.t, string) result) list

(** Everything the program printed via printf/puts so far. *)
val output : env -> string
