(** Interpreter for the C/C++/CUDA subset with coverage hooks.

    Executes parsed translation units directly.  CUDA kernels launched
    with [f<<<grid, block>>>(args)] run on the CPU, sequentially over the
    grid with [threadIdx]/[blockIdx] bound per iteration — the cuda4cpu
    approach the paper uses to measure GPU code coverage with CPU tooling.

    Memory is cell-addressed and checked: out-of-bounds and
    use-after-free accesses abort the run with a memory fault, which the
    fault-injection harness exploits as a dynamic defensive-programming
    probe. *)

exception Runtime_error of string * Cfront.Loc.t
exception Step_limit_exceeded

(** Control-flow signals.  Exposed so the bytecode engine ({!Exec}) can
    share the interpreter's exception protocol: a compiled activation
    raises and catches exactly these, which is what keeps cross-engine
    behaviour (uncaught throws, stray gotos) byte-identical. *)
exception Return_signal of Value.t
exception Break_signal
exception Continue_signal
exception Goto_signal of string
exception Cxx_throw of Value.t

(** Event hooks fired during execution; the {!Collector} aggregates them
    into coverage reports. *)
type hooks = {
  on_stmt : int -> unit;  (** executable statement id *)
  on_decision : int -> (int * bool option) list -> bool -> unit;
      (** decision eid, (condition eid, value-if-evaluated) vector, outcome *)
  on_switch : int -> int -> unit;  (** switch sid, clause index taken *)
  on_call : string -> unit;  (** qualified function name *)
  on_kernel_launch : string -> grid:int -> block:int -> unit;
  on_function_stmt : string -> unit;
      (** qualified name of the enclosing function, fired once per
          executed statement — drives the telemetry hot-function
          profile *)
}

val null_hooks : hooks

(** [telemetry_hooks ?base ()] layers global-telemetry recording
    (statement / call / kernel-launch counters, per-function statement
    counts under ["interp.fn."]) over [base].  Returns [base] unchanged
    when telemetry is disabled at construction time. *)
val telemetry_hooks : ?base:hooks -> unit -> hooks

(** Flattened struct layout: field name -> (cell offset, field type). *)
type layout = {
  l_size : int;
  l_fields : (string * (int * Cfront.Ast.ctype)) list;
}

(** Interpreter state: store, globals, functions, struct layouts.  The
    record is concrete because the bytecode engine ({!Compile}/{!Exec})
    executes against the {e same} environment type — same memory, same
    symbol tables, same hooks, same step counter — so the two engines are
    observationally interchangeable. *)
type env = {
  mem : Memory.t;
  globals : (string, Value.ptr * Cfront.Ast.ctype) Hashtbl.t;
  funcs : (string, Cfront.Ast.func) Hashtbl.t;
  layouts : (string, layout) Hashtbl.t;
  enums : (string, int64) Hashtbl.t;
  hooks : hooks;
  output : Buffer.t;
  mutable steps : int;
  max_steps : int;
  mutable cuda_dims : (string * int64) list;
  mutable rand_state : int64;
  mutable diagnostics : string list;
  mutable cur_fn : string;
}

(** A call frame: name -> (cell, declared type), newest binding first.
    Bindings are pushed and never popped (block scoping is not modelled),
    which is exactly what makes the bytecode engine's one-slot-per-name
    locals equivalent to the assoc list. *)
type frame = { mutable vars : (string * (Value.ptr * Cfront.Ast.ctype)) list }

(** [create ()] makes a fresh environment.  [max_steps] bounds total
    evaluation steps across all runs in this environment (default 5e7). *)
val create : ?hooks:hooks -> ?max_steps:int -> unit -> env

(** Count one evaluation step against [env.max_steps].  The tree-walker
    ticks once per visited AST node; the bytecode engine ticks once per
    dispatched instruction, so [env.steps] doubles as the dispatch
    counter the `compile` bench compares across engines. *)
val tick : env -> Cfront.Loc.t -> unit

(** Shared semantic helpers (cell sizing, value conversion, arithmetic,
    symbol lookup).  {!Exec} calls these rather than reimplementing them
    so any semantic fix lands in both engines at once. *)
val size_of : env -> Cfront.Ast.ctype -> int

val strip_const : Cfront.Ast.ctype -> Cfront.Ast.ctype
val pointee : env -> Cfront.Ast.ctype -> Cfront.Ast.ctype
val default_value : Cfront.Ast.ctype -> Value.t
val convert_to : Cfront.Ast.ctype -> Value.t -> Value.t

val arith_binop :
  env -> Cfront.Ast.binop -> Value.t -> Value.t -> Cfront.Loc.t -> Value.t

val cuda_builtin_names : string list

(** Frame-then-globals lookup with the namespace-suffix fallback. *)
val find_var :
  env -> frame -> string -> (Value.ptr * Cfront.Ast.ctype) option

(** Exact-name-then-namespace-suffix function resolution. *)
val resolve_func : env -> string -> Cfront.Ast.func option

val builtin_ctx : env -> frame -> Builtins.ctx

(** Load a unit's records, enums, globals and functions into the
    environment (global initializers run immediately). *)
val load_tu : env -> Cfront.Ast.tu -> unit

(** [run env tus ~entry ~args] loads [tus] then calls [entry].  Returns
    the entry's return value, or a diagnostic for runtime errors, memory
    faults, uncaught C++ exceptions, or step-limit exhaustion.  An
    environment survives errors and can run further entry points. *)
val run :
  env ->
  Cfront.Ast.tu list ->
  entry:string ->
  args:Value.t list ->
  (Value.t, string) result

(** [run_entries env ~entries] calls each entry in order in the same
    (already loaded) environment, pairing each with its result.  A
    failing entry does not stop the rest — the fault-injection and
    gap-probe scenarios rely on the coverage accumulated before a
    fault. *)
val run_entries :
  env -> entries:string list -> (string * (Value.t, string) result) list

(** Everything the program printed via printf/puts so far. *)
val output : env -> string
