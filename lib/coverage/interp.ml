(** Interpreter for the C/C++/CUDA subset with coverage hooks.

    Executes parsed translation units directly.  CUDA kernels launched
    with [f<<<grid, block>>>(args)] are run on the CPU, sequentially over
    the grid — the cuda4cpu trick the paper uses to measure GPU code
    coverage with CPU tooling.

    Coverage hooks fire on every executed statement, on every boolean
    decision (with the full condition vector, for MC/DC), on every switch
    dispatch, and on every function entry. *)

exception Runtime_error of string * Cfront.Loc.t
exception Step_limit_exceeded

(* Internal control-flow signals. *)
exception Return_signal of Value.t
exception Break_signal
exception Continue_signal
exception Goto_signal of string
exception Cxx_throw of Value.t
exception Exit_loop
exception Exit_block

type hooks = {
  on_stmt : int -> unit;
  on_decision : int -> (int * bool option) list -> bool -> unit;
      (** decision eid, (condition eid, outcome-if-evaluated) vector, decision outcome *)
  on_switch : int -> int -> unit;  (** switch sid, clause index taken *)
  on_call : string -> unit;  (** qualified function name *)
  on_kernel_launch : string -> grid:int -> block:int -> unit;
  on_function_stmt : string -> unit;
      (** qualified name of the function executing each statement; the
          telemetry hot-function profile aggregates these *)
}

let null_hooks =
  {
    on_stmt = (fun _ -> ());
    on_decision = (fun _ _ _ -> ());
    on_switch = (fun _ _ -> ());
    on_call = (fun _ -> ());
    on_kernel_launch = (fun _ ~grid:_ ~block:_ -> ());
    on_function_stmt = (fun _ -> ());
  }

(** Wrap [base] so the interpreter also feeds the global telemetry sink:
    statement/call/kernel-launch counters plus per-function statement
    counts under "interp.fn." (the hot-function profile).  When
    telemetry is disabled at construction time, [base] is returned
    unchanged and the interpreter pays nothing. *)
let telemetry_hooks ?(base = null_hooks) () =
  if not (Telemetry.enabled ()) then base
  else
    {
      on_stmt =
        (fun sid ->
          Telemetry.incr "interp.stmts";
          base.on_stmt sid);
      on_decision =
        (fun eid conds outcome ->
          Telemetry.incr "interp.decisions";
          base.on_decision eid conds outcome);
      on_switch = base.on_switch;
      on_call =
        (fun name ->
          Telemetry.incr "interp.calls";
          base.on_call name);
      on_kernel_launch =
        (fun name ~grid ~block ->
          Telemetry.incr "interp.kernel_launches";
          Telemetry.add "interp.kernel_threads" (grid * block);
          base.on_kernel_launch name ~grid ~block);
      on_function_stmt =
        (fun fn ->
          Telemetry.incr ("interp.fn." ^ fn);
          base.on_function_stmt fn);
    }

type layout = {
  l_size : int;
  l_fields : (string * (int * Cfront.Ast.ctype)) list;  (** name -> offset, type *)
}

type env = {
  mem : Memory.t;
  globals : (string, Value.ptr * Cfront.Ast.ctype) Hashtbl.t;
  funcs : (string, Cfront.Ast.func) Hashtbl.t;
  layouts : (string, layout) Hashtbl.t;
  enums : (string, int64) Hashtbl.t;
  hooks : hooks;
  output : Buffer.t;
  mutable steps : int;
  max_steps : int;
  mutable cuda_dims : (string * int64) list;  (** threadIdx.x etc. during kernel runs *)
  mutable rand_state : int64;
  mutable diagnostics : string list;
  mutable cur_fn : string;  (** qualified name of the executing function *)
}

type frame = { mutable vars : (string * (Value.ptr * Cfront.Ast.ctype)) list }

let tick env loc =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then begin
    env.diagnostics <-
      Printf.sprintf "step limit at %s" (Cfront.Loc.to_string loc) :: env.diagnostics;
    raise Step_limit_exceeded
  end

(* ------------------------------------------------------------------ *)
(* Types and layouts                                                   *)
(* ------------------------------------------------------------------ *)

let rec size_of env (ty : Cfront.Ast.ctype) =
  match ty with
  | Cfront.Ast.Tvoid -> 0
  | Cfront.Ast.Tbool | Cfront.Ast.Tchar | Cfront.Ast.Tint _ | Cfront.Ast.Tfloat
  | Cfront.Ast.Tdouble | Cfront.Ast.Tptr _ | Cfront.Ast.Tref _ | Cfront.Ast.Tauto -> 1
  | Cfront.Ast.Tconst t -> size_of env t
  | Cfront.Ast.Tarray (t, Some n) -> n * size_of env t
  | Cfront.Ast.Tarray (_, None) -> 1
  | Cfront.Ast.Tnamed name ->
    (match Hashtbl.find_opt env.layouts name with
     | Some l -> l.l_size
     | None -> 1)
  | Cfront.Ast.Ttemplate _ -> 1

let rec strip_const = function
  | Cfront.Ast.Tconst t | Cfront.Ast.Tref t -> strip_const t
  | t -> t

let pointee env ty =
  match strip_const ty with
  | Cfront.Ast.Tptr t -> t
  | Cfront.Ast.Tarray (t, _) -> t
  | _ ->
    ignore env;
    Cfront.Ast.int_t

let layout_of_record env (r : Cfront.Ast.record) =
  let fields = ref [] in
  let off = ref 0 in
  List.iter
    (fun ((_ : Cfront.Ast.access), (d : Cfront.Ast.var_decl)) ->
      fields := (d.Cfront.Ast.v_name, (!off, d.Cfront.Ast.v_type)) :: !fields;
      off := !off + size_of env d.Cfront.Ast.v_type)
    r.Cfront.Ast.r_fields;
  { l_size = Stdlib.max 1 !off; l_fields = List.rev !fields }

let default_value ty =
  match strip_const ty with
  | Cfront.Ast.Tfloat | Cfront.Ast.Tdouble -> Value.Vfloat 0.0
  | Cfront.Ast.Tbool -> Value.Vbool false
  | Cfront.Ast.Tptr _ -> Value.Vnull
  | _ -> Value.Vint 0L

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)
(* ------------------------------------------------------------------ *)

let create ?(hooks = null_hooks) ?(max_steps = 50_000_000) () =
  {
    mem = Memory.create ();
    globals = Hashtbl.create 64;
    funcs = Hashtbl.create 64;
    layouts = Hashtbl.create 16;
    enums = Hashtbl.create 16;
    hooks;
    output = Buffer.create 256;
    steps = 0;
    max_steps;
    cuda_dims = [];
    rand_state = 0x2545F4914F6CDD1DL;
    diagnostics = [];
    cur_fn = "";
  }

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let arith_binop env op (a : Value.t) (b : Value.t) loc =
  let open Cfront.Ast in
  let fail msg = raise (Runtime_error (msg, loc)) in
  let int_op f =
    Value.Vint (f (Value.as_int a) (Value.as_int b))
  in
  let num_op fi ff =
    if Value.is_float a || Value.is_float b then
      Value.Vfloat (ff (Value.as_float a) (Value.as_float b))
    else Value.Vint (fi (Value.as_int a) (Value.as_int b))
  in
  let cmp_op fi ff =
    if Value.is_float a || Value.is_float b then
      Value.Vbool (ff (Value.as_float a) (Value.as_float b))
    else Value.Vbool (fi (Value.as_int a) (Value.as_int b))
  in
  match (op, a, b) with
  (* pointer arithmetic: stride is applied by the caller (eval of Index);
     raw pointer +/- moves whole cells of the pointee handled there too.
     Here we handle ptr +/- int directly in cells of unknown stride = 1;
     typed stride handled in eval. *)
  | Add, Value.Vptr p, _ -> Value.Vptr (Memory.shift p (Int64.to_int (Value.as_int b)))
  | Add, _, Value.Vptr p -> Value.Vptr (Memory.shift p (Int64.to_int (Value.as_int a)))
  | Sub, Value.Vptr p, Value.Vptr q ->
    if p.Value.block <> q.Value.block then fail "subtraction of unrelated pointers"
    else Value.Vint (Int64.of_int (p.Value.offset - q.Value.offset))
  | Sub, Value.Vptr p, _ -> Value.Vptr (Memory.shift p (-Int64.to_int (Value.as_int b)))
  | Eq, Value.Vptr p, Value.Vptr q -> Value.Vbool (p = q)
  | Eq, Value.Vptr _, Value.Vnull | Eq, Value.Vnull, Value.Vptr _ -> Value.Vbool false
  | Eq, Value.Vnull, Value.Vnull -> Value.Vbool true
  | Ne, Value.Vptr p, Value.Vptr q -> Value.Vbool (p <> q)
  | Ne, Value.Vptr _, Value.Vnull | Ne, Value.Vnull, Value.Vptr _ -> Value.Vbool true
  | Ne, Value.Vnull, Value.Vnull -> Value.Vbool false
  | Add, _, _ -> num_op Int64.add ( +. )
  | Sub, _, _ -> num_op Int64.sub ( -. )
  | Mul, _, _ -> num_op Int64.mul ( *. )
  | Div, _, _ ->
    if Value.is_float a || Value.is_float b then
      Value.Vfloat (Value.as_float a /. Value.as_float b)
    else if Value.as_int b = 0L then fail "integer division by zero"
    else Value.Vint (Int64.div (Value.as_int a) (Value.as_int b))
  | Mod, _, _ ->
    if Value.as_int b = 0L then fail "modulo by zero"
    else Value.Vint (Int64.rem (Value.as_int a) (Value.as_int b))
  | Shl, _, _ -> int_op (fun x y -> Int64.shift_left x (Int64.to_int y))
  | Shr, _, _ -> int_op (fun x y -> Int64.shift_right x (Int64.to_int y))
  | Band, _, _ -> int_op Int64.logand
  | Bor, _, _ -> int_op Int64.logor
  | Bxor, _, _ -> int_op Int64.logxor
  | Lt, _, _ -> cmp_op (fun x y -> Int64.compare x y < 0) ( < )
  | Gt, _, _ -> cmp_op (fun x y -> Int64.compare x y > 0) ( > )
  | Le, _, _ -> cmp_op (fun x y -> Int64.compare x y <= 0) ( <= )
  | Ge, _, _ -> cmp_op (fun x y -> Int64.compare x y >= 0) ( >= )
  | Eq, _, _ -> cmp_op (fun x y -> Int64.equal x y) (fun x y -> x = y)
  | Ne, _, _ -> cmp_op (fun x y -> not (Int64.equal x y)) (fun x y -> x <> y)
  | (Land | Lor | Comma), _, _ ->
    ignore env;
    fail "logical/comma operators handled elsewhere"

let convert_to ty (v : Value.t) =
  match strip_const ty with
  | Cfront.Ast.Tfloat | Cfront.Ast.Tdouble -> Value.Vfloat (Value.as_float v)
  | Cfront.Ast.Tint _ | Cfront.Ast.Tchar -> (
      match v with
      | Value.Vptr _ -> v  (* keep pointers intact through int casts *)
      | _ -> Value.Vint (Value.as_int v))
  | Cfront.Ast.Tbool -> Value.Vbool (Value.truthy v)
  | _ -> v

(* ------------------------------------------------------------------ *)
(* Variable lookup                                                     *)
(* ------------------------------------------------------------------ *)

let cuda_builtin_names = [ "threadIdx"; "blockIdx"; "blockDim"; "gridDim" ]

let find_var env frame name =
  match List.assoc_opt name frame.vars with
  | Some entry -> Some entry
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some entry -> Some entry
      | None ->
        (* try simple-name match for namespace-qualified globals *)
        Hashtbl.fold
          (fun key entry acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if Util.Strutil.ends_with ~suffix:("::" ^ name) key then Some entry
              else None)
          env.globals None)

let resolve_func env name =
  match Hashtbl.find_opt env.funcs name with
  | Some f -> Some f
  | None ->
    Hashtbl.fold
      (fun key f acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Util.Strutil.ends_with ~suffix:("::" ^ name) key then Some f else None)
      env.funcs None

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval env frame (e : Cfront.Ast.expr) : Value.t =
  fst (eval_typed env frame e)

and eval_typed env frame (e : Cfront.Ast.expr) : Value.t * Cfront.Ast.ctype =
  tick env e.Cfront.Ast.eloc;
  let loc = e.Cfront.Ast.eloc in
  match e.Cfront.Ast.e with
  | Cfront.Ast.Int_const v -> (Value.Vint v, Cfront.Ast.int_t)
  | Cfront.Ast.Float_const v -> (Value.Vfloat v, Cfront.Ast.Tdouble)
  | Cfront.Ast.Bool_const b -> (Value.Vbool b, Cfront.Ast.Tbool)
  | Cfront.Ast.Str_const s -> (Value.Vstr s, Cfront.Ast.Tptr Cfront.Ast.Tchar)
  | Cfront.Ast.Char_const c -> (Value.Vint (Int64.of_int (Char.code c)), Cfront.Ast.Tchar)
  | Cfront.Ast.Nullptr -> (Value.Vnull, Cfront.Ast.Tptr Cfront.Ast.Tvoid)
  | Cfront.Ast.Id name -> (
      (* CUDA dim pseudo-variables used bare (rare) *)
      match List.assoc_opt name env.cuda_dims with
      | Some v -> (Value.Vint v, Cfront.Ast.int_t)
      | None -> (
          match Hashtbl.find_opt env.enums name with
          | Some v -> (Value.Vint v, Cfront.Ast.int_t)
          | None -> (
              match find_var env frame name with
              | Some (p, ty) -> (
                  (* arrays decay to a pointer to their first cell *)
                  match strip_const ty with
                  | Cfront.Ast.Tarray (elem, _) -> (Value.Vptr p, Cfront.Ast.Tptr elem)
                  | Cfront.Ast.Tnamed _ -> (Value.Vptr p, ty)  (* struct value = its block *)
                  | _ -> (Memory.load env.mem p, ty))
              | None ->
                if name = "NULL" then (Value.Vnull, Cfront.Ast.Tptr Cfront.Ast.Tvoid)
                else raise (Runtime_error ("unbound identifier " ^ name, loc)))))
  | Cfront.Ast.Unary (op, a) -> eval_unary env frame op a loc
  | Cfront.Ast.Postfix (op, a) ->
    let p, ty = lvalue env frame a in
    let old = Memory.load env.mem p in
    let delta = match op with Cfront.Ast.Post_inc -> 1L | Cfront.Ast.Post_dec -> -1L in
    let nv =
      match old with
      | Value.Vptr q -> Value.Vptr (Memory.shift q (Int64.to_int delta))
      | Value.Vfloat f -> Value.Vfloat (f +. Int64.to_float delta)
      | v -> Value.Vint (Int64.add (Value.as_int v) delta)
    in
    Memory.store env.mem p nv;
    (old, ty)
  | Cfront.Ast.Binary (Cfront.Ast.Land, _, _) | Cfront.Ast.Binary (Cfront.Ast.Lor, _, _) ->
    (* a logical tree evaluated outside control position: still short-circuit *)
    let tbl = Hashtbl.create 4 in
    let outcome = eval_bool_tree env frame tbl e in
    (Value.Vbool outcome, Cfront.Ast.Tbool)
  | Cfront.Ast.Binary (Cfront.Ast.Comma, a, b) ->
    let _ = eval env frame a in
    eval_typed env frame b
  | Cfront.Ast.Binary (op, a, b) ->
    let va, ta = eval_typed env frame a in
    let vb, _ = eval_typed env frame b in
    (* typed pointer stride for ptr +/- int *)
    let result =
      match (op, va, vb) with
      | (Cfront.Ast.Add | Cfront.Ast.Sub), Value.Vptr p, _
        when not (match vb with Value.Vptr _ -> true | _ -> false) ->
        let stride = size_of env (pointee env ta) in
        let n = Int64.to_int (Value.as_int vb) * stride in
        Value.Vptr (Memory.shift p (if op = Cfront.Ast.Add then n else -n))
      | _ -> arith_binop env op va vb loc
    in
    let ty =
      match result with
      | Value.Vbool _ -> Cfront.Ast.Tbool
      | Value.Vfloat _ -> Cfront.Ast.Tdouble
      | Value.Vptr _ -> ta
      | _ -> Cfront.Ast.int_t
    in
    (result, ty)
  | Cfront.Ast.Assign (op, lhs, rhs) ->
    let p, ty = lvalue env frame lhs in
    let rv = eval env frame rhs in
    (* whole-struct assignment copies the block *)
    (match (strip_const ty, rv) with
     | Cfront.Ast.Tnamed name, Value.Vptr src when Hashtbl.mem env.layouts name ->
       Memory.copy env.mem ~src ~dst:p (size_of env ty)
     | _ -> ignore rv);
    (match (strip_const ty, rv) with
     | Cfront.Ast.Tnamed name, Value.Vptr _ when Hashtbl.mem env.layouts name ->
       (Value.Vptr p, ty)
     | _ ->
    let newv =
      match op with
      | Cfront.Ast.A_eq -> convert_to ty rv
      | _ ->
        let old = Memory.load env.mem p in
        let bop =
          match op with
          | Cfront.Ast.A_add -> Cfront.Ast.Add
          | Cfront.Ast.A_sub -> Cfront.Ast.Sub
          | Cfront.Ast.A_mul -> Cfront.Ast.Mul
          | Cfront.Ast.A_div -> Cfront.Ast.Div
          | Cfront.Ast.A_mod -> Cfront.Ast.Mod
          | Cfront.Ast.A_shl -> Cfront.Ast.Shl
          | Cfront.Ast.A_shr -> Cfront.Ast.Shr
          | Cfront.Ast.A_and -> Cfront.Ast.Band
          | Cfront.Ast.A_or -> Cfront.Ast.Bor
          | Cfront.Ast.A_xor -> Cfront.Ast.Bxor
          | Cfront.Ast.A_eq -> assert false
        in
        convert_to ty (arith_binop env bop old rv loc)
    in
    Memory.store env.mem p newv;
    (newv, ty))
  | Cfront.Ast.Ternary (c, a, b) ->
    let tbl = Hashtbl.create 4 in
    let outcome = eval_bool_tree env frame tbl c in
    report_decision env tbl c outcome;
    if outcome then eval_typed env frame a else eval_typed env frame b
  | Cfront.Ast.Call (f, args) -> eval_call env frame f args loc
  | Cfront.Ast.Kernel_launch { kernel; grid; block; args } ->
    eval_kernel_launch env frame kernel grid block args loc
  | Cfront.Ast.Index (a, i) ->
    let p, elem_ty = index_ptr env frame a i in
    (match strip_const elem_ty with
     | Cfront.Ast.Tnamed _ | Cfront.Ast.Tarray _ -> (Value.Vptr p, elem_ty)
     | _ -> (Memory.load env.mem p, elem_ty))
  | Cfront.Ast.Member _ -> (
      match cuda_dim_member env e with
      | Some v -> (Value.Vint v, Cfront.Ast.int_t)
      | None ->
        let p, ty = lvalue env frame e in
        (match strip_const ty with
         | Cfront.Ast.Tnamed _ | Cfront.Ast.Tarray _ -> (Value.Vptr p, ty)
         | _ -> (Memory.load env.mem p, ty)))
  | Cfront.Ast.C_cast (ty, a) | Cfront.Ast.Cpp_cast (_, ty, a) ->
    let v = eval env frame a in
    (convert_to ty v, ty)
  | Cfront.Ast.Sizeof_type ty -> (Value.Vint (Int64.of_int (size_of env ty)), Cfront.Ast.int_t)
  | Cfront.Ast.Sizeof_expr a ->
    let _, ty = eval_typed env frame a in
    (Value.Vint (Int64.of_int (size_of env ty)), Cfront.Ast.int_t)
  | Cfront.Ast.New { ty; array_size; _ } ->
    let n =
      match array_size with
      | None -> 1
      | Some sz -> Int64.to_int (Value.as_int (eval env frame sz))
    in
    let p = Memory.alloc env.mem ~init:(default_value ty) (n * size_of env ty) in
    (Value.Vptr p, Cfront.Ast.Tptr ty)
  | Cfront.Ast.Delete { target; _ } ->
    (match eval env frame target with
     | Value.Vptr p -> Memory.free env.mem p
     | Value.Vnull -> ()
     | _ -> raise (Runtime_error ("delete of non-pointer", loc)));
    (Value.Vvoid, Cfront.Ast.Tvoid)
  | Cfront.Ast.Throw None -> raise (Cxx_throw (Value.Vint 0L))
  | Cfront.Ast.Throw (Some a) -> raise (Cxx_throw (eval env frame a))

and eval_unary env frame op a loc =
  match op with
  | Cfront.Ast.Neg -> (
      match eval_typed env frame a with
      | Value.Vfloat f, ty -> (Value.Vfloat (-.f), ty)
      | v, ty -> (Value.Vint (Int64.neg (Value.as_int v)), ty))
  | Cfront.Ast.Pos -> eval_typed env frame a
  | Cfront.Ast.Lnot -> (Value.Vbool (not (Value.truthy (eval env frame a))), Cfront.Ast.Tbool)
  | Cfront.Ast.Bnot -> (Value.Vint (Int64.lognot (Value.as_int (eval env frame a))), Cfront.Ast.int_t)
  | Cfront.Ast.Pre_inc | Cfront.Ast.Pre_dec ->
    let p, ty = lvalue env frame a in
    let old = Memory.load env.mem p in
    let delta = if op = Cfront.Ast.Pre_inc then 1L else -1L in
    let nv =
      match old with
      | Value.Vptr q -> Value.Vptr (Memory.shift q (Int64.to_int delta))
      | Value.Vfloat f -> Value.Vfloat (f +. Int64.to_float delta)
      | v -> Value.Vint (Int64.add (Value.as_int v) delta)
    in
    Memory.store env.mem p nv;
    (nv, ty)
  | Cfront.Ast.Deref -> (
      match eval_typed env frame a with
      | Value.Vptr p, ty ->
        let elem = pointee env ty in
        (match strip_const elem with
         | Cfront.Ast.Tnamed _ -> (Value.Vptr p, elem)
         | _ -> (Memory.load env.mem p, elem))
      | Value.Vnull, _ -> raise (Runtime_error ("null pointer dereference", loc))
      | _ -> raise (Runtime_error ("dereference of non-pointer", loc)))
  | Cfront.Ast.Addr_of ->
    let p, ty = lvalue env frame a in
    (Value.Vptr p, Cfront.Ast.Tptr ty)

and index_ptr env frame a i =
  let va, ta = eval_typed env frame a in
  let idx = Int64.to_int (Value.as_int (eval env frame i)) in
  match va with
  | Value.Vptr p ->
    let elem = pointee env ta in
    (Memory.shift p (idx * size_of env elem), elem)
  | Value.Vnull -> raise (Runtime_error ("index of null pointer", a.Cfront.Ast.eloc))
  | _ -> raise (Runtime_error ("index of non-pointer", a.Cfront.Ast.eloc))

and cuda_dim_member env (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Member { obj = { e = Cfront.Ast.Id base; _ }; arrow = false; field }
    when List.mem base cuda_builtin_names ->
    Some
      (Option.value ~default:0L (List.assoc_opt (base ^ "." ^ field) env.cuda_dims))
  | _ -> None

and lvalue env frame (e : Cfront.Ast.expr) : Value.ptr * Cfront.Ast.ctype =
  let loc = e.Cfront.Ast.eloc in
  match e.Cfront.Ast.e with
  | Cfront.Ast.Id name -> (
      match find_var env frame name with
      | Some (p, ty) -> (p, ty)
      | None -> raise (Runtime_error ("unbound identifier " ^ name, loc)))
  | Cfront.Ast.Unary (Cfront.Ast.Deref, a) -> (
      match eval_typed env frame a with
      | Value.Vptr p, ty -> (p, pointee env ty)
      | Value.Vnull, _ -> raise (Runtime_error ("null pointer dereference", loc))
      | _ -> raise (Runtime_error ("dereference of non-pointer", loc)))
  | Cfront.Ast.Index (a, i) -> index_ptr env frame a i
  | Cfront.Ast.Member { obj; arrow; field } ->
    let p, record_ty =
      if arrow then
        match eval_typed env frame obj with
        | Value.Vptr p, ty -> (p, pointee env ty)
        | Value.Vnull, _ -> raise (Runtime_error ("null -> access", loc))
        | _ -> raise (Runtime_error ("-> on non-pointer", loc))
      else lvalue env frame obj
    in
    let record_name =
      match strip_const record_ty with
      | Cfront.Ast.Tnamed n -> n
      | _ -> raise (Runtime_error ("member access on non-struct", loc))
    in
    (match Hashtbl.find_opt env.layouts record_name with
     | None -> raise (Runtime_error ("unknown struct " ^ record_name, loc))
     | Some l -> (
         match List.assoc_opt field l.l_fields with
         | None ->
           raise (Runtime_error (Printf.sprintf "no field %s in %s" field record_name, loc))
         | Some (off, fty) -> (Memory.shift p off, fty)))
  | Cfront.Ast.C_cast (ty, inner) | Cfront.Ast.Cpp_cast (_, ty, inner) ->
    (* a cast applied to an address, as in the cudaMalloc void-star idiom,
       used as an lvalue target *)
    let p, _ = lvalue env frame inner in
    (p, ty)
  | _ -> raise (Runtime_error ("expression is not an lvalue", loc))

(* Short-circuit evaluation of a decision tree, recording leaf outcomes. *)
and eval_bool_tree env frame tbl (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Binary (Cfront.Ast.Land, a, b) ->
    if eval_bool_tree env frame tbl a then eval_bool_tree env frame tbl b else false
  | Cfront.Ast.Binary (Cfront.Ast.Lor, a, b) ->
    if eval_bool_tree env frame tbl a then true else eval_bool_tree env frame tbl b
  | Cfront.Ast.Unary (Cfront.Ast.Lnot, a) -> not (eval_bool_tree env frame tbl a)
  | _ ->
    let v = Value.truthy (eval env frame e) in
    Hashtbl.replace tbl e.Cfront.Ast.eid v;
    v

and report_decision env tbl (cond : Cfront.Ast.expr) outcome =
  let leaves = Instrument.leaves_of cond in
  let vector = List.map (fun eid -> (eid, Hashtbl.find_opt tbl eid)) leaves in
  env.hooks.on_decision cond.Cfront.Ast.eid vector outcome

and eval_decision env frame (cond : Cfront.Ast.expr) =
  let tbl = Hashtbl.create 4 in
  let outcome = eval_bool_tree env frame tbl cond in
  report_decision env tbl cond outcome;
  outcome

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and eval_call env frame fexpr args loc =
  match fexpr.Cfront.Ast.e with
  | Cfront.Ast.Id name -> (
      match Builtins.lookup name with
      | Some bfn ->
        let vals = eval_args_for_builtin env frame name args in
        (Builtins.apply bfn (builtin_ctx env frame) vals loc, Cfront.Ast.Tauto)
      | None -> (
          match resolve_func env name with
          | Some fn -> (call_function env fn (eval_call_args env frame fn args), fn.Cfront.Ast.f_ret)
          | None ->
            raise (Runtime_error ("call to undefined function " ^ name, loc))))
  | Cfront.Ast.Member { field; _ } -> (
      (* method-style call: resolve by simple name *)
      match resolve_func env field with
      | Some fn -> (call_function env fn (eval_call_args env frame fn args), fn.Cfront.Ast.f_ret)
      | None -> raise (Runtime_error ("call to undefined method " ^ field, loc)))
  | _ -> raise (Runtime_error ("call through non-identifier", loc))

(* assert needs its raw argument for the message; builtins otherwise take
   evaluated values *)
and eval_args_for_builtin env frame _name args =
  List.map (fun a -> eval env frame a) args

and eval_call_args env frame (fn : Cfront.Ast.func) args =
  (* reference parameters receive the address of their argument *)
  let params = fn.Cfront.Ast.f_params in
  List.mapi
    (fun i a ->
      let by_ref =
        match List.nth_opt params i with
        | Some p -> (
            match p.Cfront.Ast.p_type with Cfront.Ast.Tref _ -> true | _ -> false)
        | None -> false
      in
      if by_ref then
        let p, _ = lvalue env frame a in
        Value.Vptr p
      else eval env frame a)
    args

and call_function env (fn : Cfront.Ast.func) (arg_values : Value.t list) =
  env.hooks.on_call (Cfront.Ast.qualified_name fn);
  let caller_fn = env.cur_fn in
  env.cur_fn <- Cfront.Ast.qualified_name fn;
  Fun.protect ~finally:(fun () -> env.cur_fn <- caller_fn) @@ fun () ->
  let callee_frame = { vars = [] } in
  List.iteri
    (fun i (p : Cfront.Ast.param) ->
      let v = try List.nth arg_values i with _ -> default_value p.Cfront.Ast.p_type in
      let ty = p.Cfront.Ast.p_type in
      match (ty, v) with
      | Cfront.Ast.Tref inner, Value.Vptr ptr ->
        (* reference param: alias the caller's storage *)
        callee_frame.vars <- (p.Cfront.Ast.p_name, (ptr, inner)) :: callee_frame.vars
      | _ ->
      match (strip_const ty, v) with
      | Cfront.Ast.Tnamed _, Value.Vptr src ->
        (* struct by value: copy the block *)
        let size = size_of env ty in
        let dst = Memory.alloc env.mem size in
        Memory.copy env.mem ~src ~dst size;
        callee_frame.vars <- (p.Cfront.Ast.p_name, (dst, ty)) :: callee_frame.vars
      | _ ->
        let cell = Memory.alloc env.mem 1 in
        Memory.store env.mem cell (convert_to ty v);
        callee_frame.vars <- (p.Cfront.Ast.p_name, (cell, ty)) :: callee_frame.vars)
    fn.Cfront.Ast.f_params;
  match fn.Cfront.Ast.f_body with
  | None -> Value.Vvoid
  | Some body -> (
      try
        exec_stmt env callee_frame body;
        Value.Vvoid
      with Return_signal v -> v)

(* ------------------------------------------------------------------ *)
(* Kernel launches                                                     *)
(* ------------------------------------------------------------------ *)

and eval_kernel_launch env frame kernel grid block args loc =
  let name =
    match kernel.Cfront.Ast.e with
    | Cfront.Ast.Id n -> n
    | _ -> raise (Runtime_error ("kernel launch of non-identifier", loc))
  in
  let fn =
    match resolve_func env name with
    | Some f -> f
    | None -> raise (Runtime_error ("launch of undefined kernel " ^ name, loc))
  in
  let gridv = Int64.to_int (Value.as_int (eval env frame grid)) in
  let blockv = Int64.to_int (Value.as_int (eval env frame block)) in
  if gridv <= 0 || blockv <= 0 then
    raise (Runtime_error ("non-positive launch configuration", loc));
  env.hooks.on_kernel_launch (Cfront.Ast.qualified_name fn) ~grid:gridv ~block:blockv;
  let arg_values = eval_call_args env frame fn args in
  let saved = env.cuda_dims in
  (try
     for b = 0 to gridv - 1 do
       for t = 0 to blockv - 1 do
         env.cuda_dims <-
           [
             ("threadIdx.x", Int64.of_int t);
             ("blockIdx.x", Int64.of_int b);
             ("blockDim.x", Int64.of_int blockv);
             ("gridDim.x", Int64.of_int gridv);
             ("threadIdx.y", 0L); ("blockIdx.y", 0L);
             ("blockDim.y", 1L); ("gridDim.y", 1L);
           ];
         ignore (call_function env fn arg_values)
       done
     done
   with ex ->
     env.cuda_dims <- saved;
     raise ex);
  env.cuda_dims <- saved;
  (Value.Vvoid, Cfront.Ast.Tvoid)

(* ------------------------------------------------------------------ *)
(* Builtin context                                                     *)
(* ------------------------------------------------------------------ *)

and builtin_ctx env frame : Builtins.ctx =
  ignore frame;
  {
    Builtins.mem = env.mem;
    output = env.output;
    rand_state = (fun () -> env.rand_state);
    set_rand_state = (fun s -> env.rand_state <- s);
  }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and declare_local env frame (d : Cfront.Ast.var_decl) =
  let ty = d.Cfront.Ast.v_type in
  let size = Stdlib.max 1 (size_of env ty) in
  let p = Memory.alloc env.mem ~init:(default_value ty) size in
  (match d.Cfront.Ast.v_init with
   | Some init ->
     let v = eval env frame init in
     (match (strip_const ty, v) with
      | Cfront.Ast.Tnamed _, Value.Vptr src -> Memory.copy env.mem ~src ~dst:p (size_of env ty)
      | _ -> Memory.store env.mem p (convert_to ty v))
   | None -> ());
  frame.vars <- (d.Cfront.Ast.v_name, (p, ty)) :: frame.vars

and exec_block env frame stmts =
  (* executes a statement list, handling goto-to-label within this list *)
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let find_label l =
    let rec go i =
      if i >= n then None
      else
        match arr.(i).Cfront.Ast.s with
        | Cfront.Ast.Slabel (l', _) when l' = l -> Some i
        | _ -> go (i + 1)
    in
    go 0
  in
  let rec run i =
    if i < n then begin
      (try exec_stmt env frame arr.(i)
       with Goto_signal l -> (
           match find_label l with
           | Some j -> run j; raise Exit_block
           | None -> raise (Goto_signal l)));
      run (i + 1)
    end
  in
  try run 0 with Exit_block -> ()

and exec_stmt env frame (stmt : Cfront.Ast.stmt) =
  tick env stmt.Cfront.Ast.sloc;
  if Instrument.is_executable stmt then begin
    env.hooks.on_stmt stmt.Cfront.Ast.sid;
    if env.cur_fn <> "" then env.hooks.on_function_stmt env.cur_fn
  end;
  match stmt.Cfront.Ast.s with
  | Cfront.Ast.Sempty -> ()
  | Cfront.Ast.Sexpr e -> ignore (eval env frame e)
  | Cfront.Ast.Sdecl ds -> List.iter (declare_local env frame) ds
  | Cfront.Ast.Sblock stmts -> exec_block env frame stmts
  | Cfront.Ast.Sif { cond; then_; else_ } ->
    if eval_decision env frame cond then exec_stmt env frame then_
    else Option.iter (exec_stmt env frame) else_
  | Cfront.Ast.Swhile (cond, body) ->
    let rec loop () =
      if eval_decision env frame cond then begin
        (try exec_stmt env frame body with
         | Break_signal -> raise Exit_loop
         | Continue_signal -> ());
        loop ()
      end
    in
    (try loop () with Exit_loop -> ())
  | Cfront.Ast.Sdo_while (body, cond) ->
    let rec loop () =
      (try exec_stmt env frame body with
       | Break_signal -> raise Exit_loop
       | Continue_signal -> ());
      if eval_decision env frame cond then loop ()
    in
    (try loop () with Exit_loop -> ())
  | Cfront.Ast.Sfor { init; cond; update; body } ->
    (match init with
     | Cfront.Ast.Fi_decl ds -> List.iter (declare_local env frame) ds
     | Cfront.Ast.Fi_expr e -> ignore (eval env frame e)
     | Cfront.Ast.Fi_empty -> ());
    let check () =
      match cond with None -> true | Some c -> eval_decision env frame c
    in
    let rec loop () =
      if check () then begin
        (try exec_stmt env frame body with
         | Break_signal -> raise Exit_loop
         | Continue_signal -> ());
        Option.iter (fun u -> ignore (eval env frame u)) update;
        loop ()
      end
    in
    (try loop () with Exit_loop -> ())
  | Cfront.Ast.Sswitch (scrutinee, body) ->
    let v = Value.as_int (eval env frame scrutinee) in
    let stmts =
      match body.Cfront.Ast.s with
      | Cfront.Ast.Sblock ss -> ss
      | _ -> [ body ]
    in
    let arr = Array.of_list stmts in
    let n = Array.length arr in
    (* find matching case, else default *)
    let clause_idx = ref (-1) in
    let target = ref None in
    let default = ref None in
    let count = ref 0 in
    Array.iteri
      (fun i s ->
        match s.Cfront.Ast.s with
        | Cfront.Ast.Scase ce ->
          let cv = Value.as_int (eval env frame ce) in
          if !target = None && Int64.equal cv v then begin
            target := Some i;
            clause_idx := !count
          end;
          incr count
        | Cfront.Ast.Sdefault ->
          default := Some (i, !count);
          incr count
        | _ -> ())
      arr;
    let start =
      match (!target, !default) with
      | Some i, _ -> Some i
      | None, Some (i, idx) ->
        clause_idx := idx;
        Some i
      | None, None -> None
    in
    (match start with
     | None -> ()
     | Some i ->
       env.hooks.on_switch stmt.Cfront.Ast.sid !clause_idx;
       (try
          for j = i to n - 1 do
            exec_stmt env frame arr.(j)
          done
        with Break_signal -> ()))
  | Cfront.Ast.Scase _ | Cfront.Ast.Sdefault -> ()
  | Cfront.Ast.Sbreak -> raise Break_signal
  | Cfront.Ast.Scontinue -> raise Continue_signal
  | Cfront.Ast.Sreturn None -> raise (Return_signal Value.Vvoid)
  | Cfront.Ast.Sreturn (Some e) -> raise (Return_signal (eval env frame e))
  | Cfront.Ast.Sgoto l -> raise (Goto_signal l)
  | Cfront.Ast.Slabel (_, inner) -> exec_stmt env frame inner
  | Cfront.Ast.Stry { body; catches } -> (
      try exec_stmt env frame body
      with Cxx_throw v -> (
          match catches with
          | [] -> raise (Cxx_throw v)
          | (_, handler) :: _ -> exec_stmt env frame handler))

(* ------------------------------------------------------------------ *)
(* Program loading and running                                         *)
(* ------------------------------------------------------------------ *)

let load_tu env (tu : Cfront.Ast.tu) =
  (* records first (layouts), then enums, then globals, then functions *)
  List.iter
    (fun r -> Hashtbl.replace env.layouts r.Cfront.Ast.r_name (layout_of_record env r))
    (Cfront.Ast.records_of_tu tu);
  Cfront.Ast.iter_tops
    (fun top ->
      match top with
      | Cfront.Ast.Tenum e ->
        let next = ref 0L in
        List.iter
          (fun (name, v) ->
            let v64 =
              match v with Some i -> Int64.of_int i | None -> !next
            in
            Hashtbl.replace env.enums name v64;
            next := Int64.add v64 1L)
          e.Cfront.Ast.en_items
      | _ -> ())
    tu.Cfront.Ast.tops;
  List.iter
    (fun (g : Cfront.Ast.global_var) ->
      if not g.Cfront.Ast.g_extern then begin
        let d = g.Cfront.Ast.g_decl in
        let ty = d.Cfront.Ast.v_type in
        let p = Memory.alloc env.mem ~init:(default_value ty) (Stdlib.max 1 (size_of env ty)) in
        let qname = String.concat "::" (g.Cfront.Ast.g_scope @ [ d.Cfront.Ast.v_name ]) in
        Hashtbl.replace env.globals qname (p, ty);
        if qname <> d.Cfront.Ast.v_name then
          Hashtbl.replace env.globals d.Cfront.Ast.v_name (p, ty)
      end)
    (Cfront.Ast.globals_of_tu tu);
  (* global initializers run after all globals exist *)
  let frame = { vars = [] } in
  List.iter
    (fun (g : Cfront.Ast.global_var) ->
      match g.Cfront.Ast.g_decl.Cfront.Ast.v_init with
      | Some init when not g.Cfront.Ast.g_extern ->
        let name = g.Cfront.Ast.g_decl.Cfront.Ast.v_name in
        (match Hashtbl.find_opt env.globals name with
         | Some (p, ty) -> Memory.store env.mem p (convert_to ty (eval env frame init))
         | None -> ())
      | _ -> ())
    (Cfront.Ast.globals_of_tu tu);
  List.iter
    (fun (fn : Cfront.Ast.func) ->
      if fn.Cfront.Ast.f_body <> None then begin
        Hashtbl.replace env.funcs (Cfront.Ast.qualified_name fn) fn;
        if not (Hashtbl.mem env.funcs fn.Cfront.Ast.f_name) then
          Hashtbl.replace env.funcs fn.Cfront.Ast.f_name fn
      end)
    (Cfront.Ast.functions_of_tu tu)

(** Load several units and call [entry] with the given argument values. *)
let run env tus ~entry ~args =
  List.iter (load_tu env) tus;
  match resolve_func env entry with
  | None -> Error (Printf.sprintf "entry function %s not found" entry)
  | Some fn -> (
      try Ok (call_function env fn args) with
      | Runtime_error (msg, loc) ->
        Error (Printf.sprintf "%s: %s" (Cfront.Loc.to_string loc) msg)
      | Memory.Fault msg -> Error ("memory fault: " ^ msg)
      | Builtins.Builtin_error msg -> Error ("builtin error: " ^ msg)
      | Step_limit_exceeded -> Error "step limit exceeded"
      | Cxx_throw v -> Error ("uncaught C++ exception: " ^ Value.to_string v))

(** Call each entry in order in the same (already loaded) environment.
    A failing entry does not stop the rest: the environment survives
    errors, and the fault-injection / gap-probe scenarios count the
    coverage reached before a fault. *)
let run_entries env ~entries =
  List.map (fun entry -> (entry, run env [] ~entry ~args:[])) entries

let output env = Buffer.contents env.output
