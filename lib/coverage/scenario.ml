(** Scenario-parallel coverage execution.  See scenario.mli.

    Each scenario owns a fresh {!Interp.env} and {!Collector}, so
    scenarios are independent tasks: {!run_all} fans them out over
    [Util.Pool] via [Telemetry.parallel_map] (order-preserving, counters
    merged deterministically) and the caller merges the per-scenario
    collectors with {!Collector.merge_into} — per-key count sums and
    MC/DC vector-set unions, both commutative and associative, so merged
    coverage equals the jobs=1 sequential run byte for byte. *)

type t = {
  sc_name : string;
  sc_tus : Cfront.Ast.tu list;
  sc_entries : string list;
}

type outcome = {
  o_name : string;
  o_collector : Collector.t;
  o_results : (string * (Value.t, string) result) list;
  o_output : string;
}

let run_one sc =
  Telemetry.with_span ~cat:"coverage" "coverage.scenario"
    ~attrs:[ ("scenario", sc.sc_name);
             ("entries", string_of_int (List.length sc.sc_entries)) ]
  @@ fun () ->
  Telemetry.incr "coverage.scenarios";
  let collector = Collector.create ~origin:sc.sc_name () in
  let env =
    Interp.create
      ~hooks:(Interp.telemetry_hooks ~base:(Collector.hooks collector) ())
      ()
  in
  let results =
    (* timed region innermost (inside the span) so the tick count is the
       same at every --jobs value; interpretation makes no clock reads *)
    Telemetry.timed ("coverage.scenario_us." ^ sc.sc_name) @@ fun () ->
    match sc.sc_entries with
    | [] -> []
    | first :: rest ->
      (* the first entry loads the units; the rest reuse the environment *)
      (first, Interp.run env sc.sc_tus ~entry:first ~args:[])
      :: Interp.run_entries env ~entries:rest
  in
  Telemetry.observe "coverage.scenario_stmts"
    (float_of_int
       (Hashtbl.fold (fun _ n acc -> acc + n) collector.Collector.stmt_hits 0));
  {
    o_name = sc.sc_name;
    o_collector = collector;
    o_results = results;
    o_output = Interp.output env;
  }

(* chunk_size 1: scenarios are coarse units of work (each replays a whole
   interpreter run), so one task per scenario keeps the pool balanced.
   Findings a scenario records on a worker come back with its outcome
   and are absorbed in scenario order. *)
let run_all scenarios =
  List.map
    (fun (outcome, findings) ->
      Provenance.absorb findings;
      outcome)
    (Telemetry.parallel_map ~chunk_size:1
       (fun sc -> Provenance.collect (fun () -> run_one sc))
       scenarios)

let merged_collector outcomes =
  Collector.merge (List.map (fun o -> o.o_collector) outcomes)

let score collector ~measured tus =
  List.filter_map
    (fun (tu : Cfront.Ast.tu) ->
      if List.mem tu.Cfront.Ast.tu_file measured then
        Some
          (Collector.score_file collector ~file:tu.Cfront.Ast.tu_file
             (Instrument.of_tu tu))
      else None)
    tus

let failures outcomes =
  List.concat_map
    (fun o ->
      List.filter_map
        (fun (entry, r) ->
          match r with
          | Ok _ -> None
          | Error e -> Some (o.o_name, entry, e))
        o.o_results)
    outcomes
