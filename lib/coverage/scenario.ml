(** Scenario-parallel coverage execution.  See scenario.mli.

    Each scenario owns a fresh {!Interp.env} and {!Collector}, so
    scenarios are independent tasks: {!run_all} fans them out over
    [Util.Pool] via [Telemetry.parallel_map] (order-preserving, counters
    merged deterministically) and the caller merges the per-scenario
    collectors with {!Collector.merge_into} — per-key count sums and
    MC/DC vector-set unions, both commutative and associative, so merged
    coverage equals the jobs=1 sequential run byte for byte. *)

type t = {
  sc_name : string;
  sc_tus : Cfront.Ast.tu list;
  sc_entries : string list;
}

type outcome = {
  o_name : string;
  o_collector : Collector.t;
  o_results : (string * (Value.t, string) result) list;
  o_output : string;
  o_steps : int;
}

type engine = Tree | Bytecode

let engine_name = function Tree -> "tree" | Bytecode -> "bytecode"

let engine_of_string = function
  | "tree" -> Some Tree
  | "bytecode" -> Some Bytecode
  | _ -> None

let run_one ?(engine = Tree) ?program sc =
  Telemetry.with_span ~cat:"coverage" "coverage.scenario"
    ~attrs:[ ("scenario", sc.sc_name);
             ("entries", string_of_int (List.length sc.sc_entries)) ]
  @@ fun () ->
  Telemetry.incr "coverage.scenarios";
  let collector = Collector.create ~origin:sc.sc_name () in
  let env =
    Interp.create
      ~hooks:(Interp.telemetry_hooks ~base:(Collector.hooks collector) ())
      ()
  in
  let results =
    (* timed region innermost (inside the span) so the tick count is the
       same at every --jobs value; interpretation makes no clock reads *)
    Telemetry.timed ("coverage.scenario_us." ^ sc.sc_name) @@ fun () ->
    match (engine, sc.sc_entries) with
    | _, [] -> []
    | Tree, first :: rest ->
      (* the first entry loads the units; the rest reuse the environment.
         The head is bound BEFORE the cons: [::] evaluates its right
         operand first, so the inline form ran the remaining entries
         against an unloaded environment ("entry function not found")
         — a latent bug the bytecode differential harness caught. *)
      let head = (first, Interp.run env sc.sc_tus ~entry:first ~args:[]) in
      head :: Interp.run_entries env ~entries:rest
    | Bytecode, entries ->
      (* compile once per shared parse (the caller may hand in a cached
         program), load once, run every entry against it *)
      let prog =
        match program with Some p -> p | None -> Compile.compile sc.sc_tus
      in
      Exec.load env prog;
      Exec.run_entries env prog ~entries
  in
  Telemetry.observe "coverage.scenario_stmts"
    (float_of_int
       (Hashtbl.fold (fun _ n acc -> acc + n) collector.Collector.stmt_hits 0));
  {
    o_name = sc.sc_name;
    o_collector = collector;
    o_results = results;
    o_output = Interp.output env;
    o_steps = env.Interp.steps;
  }

(* One compiled program per distinct parse in the scenario list.  Keyed
   by per-element physical equality of the tu list: scenarios built over
   the same shared parse (possibly through different list spines) reuse
   one immutable program, which worker domains then share read-only. *)
let compile_cache scenarios =
  let same_tus a b =
    List.compare_lengths a b = 0 && List.for_all2 ( == ) a b
  in
  let cache =
    List.fold_left
      (fun acc sc ->
        if List.exists (fun (tus, _) -> same_tus tus sc.sc_tus) acc then acc
        else (sc.sc_tus, Compile.compile sc.sc_tus) :: acc)
      [] scenarios
  in
  fun sc ->
    Option.map snd (List.find_opt (fun (tus, _) -> same_tus tus sc.sc_tus) cache)

(* chunk_size 1: scenarios are coarse units of work (each replays a whole
   interpreter run), so one task per scenario keeps the pool balanced.
   Findings a scenario records on a worker come back with its outcome
   and are absorbed in scenario order. *)
let run_all ?(engine = Tree) scenarios =
  (* programs are compiled sequentially up front (compilation is pure
     and jobs-independent), then shared across the pool *)
  let program_for =
    match engine with Tree -> fun _ -> None | Bytecode -> compile_cache scenarios
  in
  (* With the artifact cache enabled, whole outcomes are memoized.  The
     key hashes the marshaled tu list — which embeds every eid/sid the
     collector will key on — plus engine, name and entries, so a cached
     outcome can only hit when replaying it is byte-identical to
     re-running (fingerprints included).  Hashed once per distinct parse,
     mirroring [compile_cache]'s physical-equality grouping.  The stored
     value carries the findings the run recorded (coverage runs journal
     through scoring, not here, but the capture keeps the journal exact
     if that ever changes). *)
  let outcome_key =
    match Cache.global () with
    | None -> fun _ -> None
    | Some _ ->
      let same_tus a b =
        List.compare_lengths a b = 0 && List.for_all2 ( == ) a b
      in
      let hashes =
        List.fold_left
          (fun acc sc ->
            if List.exists (fun (tus, _) -> same_tus tus sc.sc_tus) acc then acc
            else
              (sc.sc_tus, Cache.fnv1a64 (Marshal.to_string sc.sc_tus [])) :: acc)
          [] scenarios
      in
      fun sc ->
        Option.map
          (fun (_, h) ->
            Cache.key ~kind:"scenario"
              [ h; engine_name engine; sc.sc_name;
                String.concat "\x00" sc.sc_entries ])
          (List.find_opt (fun (tus, _) -> same_tus tus sc.sc_tus) hashes)
  in
  List.map
    (fun (outcome, findings) ->
      Provenance.absorb findings;
      outcome)
    (Telemetry.parallel_map ~chunk_size:1
       (fun sc ->
         let cold () =
           Provenance.collect (fun () -> run_one ~engine ?program:(program_for sc) sc)
         in
         match (Cache.global (), outcome_key sc) with
         | Some c, Some key ->
           Cache.memo c ~kind:"scenario" ~key cold
         | _ -> cold ())
       scenarios)

let merged_collector outcomes =
  Collector.merge (List.map (fun o -> o.o_collector) outcomes)

let score collector ~measured tus =
  List.filter_map
    (fun (tu : Cfront.Ast.tu) ->
      if List.mem tu.Cfront.Ast.tu_file measured then
        Some
          (Collector.score_file collector ~file:tu.Cfront.Ast.tu_file
             (Instrument.of_tu tu))
      else None)
    tus

let failures outcomes =
  List.concat_map
    (fun o ->
      List.filter_map
        (fun (entry, r) ->
          match r with
          | Ok _ -> None
          | Error e -> Some (o.o_name, entry, e))
        o.o_results)
    outcomes
