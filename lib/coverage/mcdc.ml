(** Modified Condition/Decision Coverage bookkeeping.

    For each decision we retain the set of observed test vectors: the
    truth value of each leaf condition (None when short-circuit skipped
    it) together with the decision outcome.  A condition [c] is MC/DC
    covered (unique-cause with short-circuit masking) when two vectors
    exist that (a) give [c] both truth values with [c] actually evaluated,
    (b) produce different decision outcomes, and (c) agree on every other
    condition — where a masked (unevaluated) condition agrees with
    anything, the standard relaxation for short-circuit languages. *)

type vector = { conds : (int * bool option) list; outcome : bool }

type decision_log = {
  mutable vectors : vector list;  (** deduplicated *)
}

type t = {
  logs : (int, decision_log) Hashtbl.t;  (** decision eid -> log *)
}

let create () = { logs = Hashtbl.create 64 }

let record t ~decision_eid ~conds ~outcome =
  let log =
    match Hashtbl.find_opt t.logs decision_eid with
    | Some l -> l
    | None ->
      let l = { vectors = [] } in
      Hashtbl.replace t.logs decision_eid l;
      l
  in
  let v = { conds; outcome } in
  if not (List.mem v log.vectors) then log.vectors <- v :: log.vectors

(* Set-union merge: fold [src]'s vectors into [into], keeping the
   deduplication invariant.  Union is commutative and associative on the
   vector *sets*, so any partition of a scenario run into batches merges
   to the same set — the scenario-parallel coverage engine relies on
   exactly this.  Only the internal list order depends on merge order;
   every score ({!condition_covered}, {!decision_score}) is an
   existential over the set and is order-blind. *)
let merge_into ~into src =
  Hashtbl.iter
    (fun eid (src_log : decision_log) ->
      List.iter
        (fun v -> record into ~decision_eid:eid ~conds:v.conds ~outcome:v.outcome)
        (List.rev src_log.vectors))
    src.logs

(** Canonical view for state comparison: decisions sorted by eid, each
    vector set sorted structurally — equal return values iff the two
    collectors carry the same MC/DC information, independent of record
    and merge order. *)
let canonical t =
  Hashtbl.fold (fun eid log acc -> (eid, List.sort compare log.vectors) :: acc) t.logs []
  |> List.sort compare

(** Pairing discipline for the independence pairs:
    - [`Masking]: a short-circuit-masked (unevaluated) condition agrees
      with anything — the practical discipline for C's lazy operators;
    - [`Strict]: unique-cause in the strict sense — every other condition
      must have the identical recorded value, including maskedness. *)
type mode = [ `Masking | `Strict ]

let agree_except ~mode ~except v1 v2 =
  List.for_all2
    (fun (id1, b1) (id2, b2) ->
      assert (id1 = id2);
      if id1 = except then true
      else
        match mode with
        | `Strict -> b1 = b2
        | `Masking -> (
            match (b1, b2) with
            | None, _ | _, None -> true  (* masked conditions agree with anything *)
            | Some x, Some y -> x = y))
    v1.conds v2.conds

let value_of cond_id v = Option.join (List.assoc_opt cond_id v.conds)

(** Is condition [cond_id] of this decision MC/DC-covered by the observed
    vectors? *)
let condition_covered ?(mode = `Masking) log cond_id =
  let vs = log.vectors in
  List.exists
    (fun v1 ->
      List.exists
        (fun v2 ->
          v1.outcome <> v2.outcome
          && (match (value_of cond_id v1, value_of cond_id v2) with
              | Some a, Some b -> a <> b
              | _ -> false)
          && agree_except ~mode ~except:cond_id v1 v2)
        vs)
    vs

(** For an MC/DC-uncovered condition, suggest the vector that would
    complete an independence pair: take an observed vector where the
    condition was evaluated and flip that condition (evaluation of the
    suggestion must also flip the decision for the pair to count — the
    tester checks that when building the input).  Returns
    [(condition value to force, the base vector to replicate)] or [None]
    when the decision was never reached at all. *)
let suggest_vector t ~decision_eid ~cond_id =
  match Hashtbl.find_opt t.logs decision_eid with
  | None -> None
  | Some log ->
    let with_cond =
      List.filter (fun v -> value_of cond_id v <> None) log.vectors
    in
    (match with_cond with
     | [] -> (
         (* condition always masked: any vector is a starting point *)
         match log.vectors with
         | v :: _ -> Some (true, v)
         | [] -> None)
     | v :: _ -> (
         match value_of cond_id v with
         | Some b -> Some (not b, v)
         | None -> None))

(** (covered, total) conditions for one decision given its static
    condition list. *)
let decision_score ?(mode = `Masking) t ~decision_eid ~conditions =
  match Hashtbl.find_opt t.logs decision_eid with
  | None -> (0, List.length conditions)
  | Some log ->
    let covered =
      List.length (List.filter (fun c -> condition_covered ~mode log c) conditions)
    in
    (covered, List.length conditions)
