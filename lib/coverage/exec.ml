(** Bytecode dispatch loop for the coverage interpreter.

    Runs a {!Bytecode.program} against the same {!Interp.env} the
    tree-walker uses: same memory, same symbol tables (loading is
    [Interp.load_tu] itself), same hooks, same exception protocol, same
    step counter.  The loop calls {!Interp.tick} exactly once per
    dispatched instruction, so [env.steps] is the dispatch count the
    `compile` bench compares against the tree-walker's node count.

    Semantic helpers ([size_of], [convert_to], [arith_binop],
    [find_var], …) are shared with {!Interp} rather than duplicated, so
    the two engines can only diverge in evaluation order — and the
    compiler's operand-fusion rules keep even that aligned on every
    non-error path. *)

module A = Cfront.Ast
module B = Bytecode
module I = Interp

(* an empty tree-walker frame: the bytecode engine keeps locals in slot
   arrays, so shared lookups ([find_var], [builtin_ctx]) see no frame *)
let no_frame () : I.frame = { I.vars = [] }

(* load: the tree-walker's loader verbatim, so global layout, enum
   values, global-initializer evaluation (and its ticks) are identical *)
let load (env : I.env) (prog : B.program) =
  List.iter (I.load_tu env) prog.B.p_tus

(* rvalue decay for an identifier: arrays decay to a pointer to their
   first cell, struct values are their block *)
let decay_id env (p, ty) =
  match I.strip_const ty with
  | A.Tarray (elem, _) -> (Value.Vptr p, A.Tptr elem)
  | A.Tnamed _ -> (Value.Vptr p, ty)
  | _ -> (Memory.load env.I.mem p, ty)

(* rvalue load through a member/index cell: aggregates stay a pointer
   with their own type (no array decay — matches the tree-walker) *)
let load_or_ptr env (p, ty) =
  match I.strip_const ty with
  | A.Tnamed _ | A.Tarray _ -> (Value.Vptr p, ty)
  | _ -> (Memory.load env.I.mem p, ty)

let global_rvalue env name loc =
  match I.find_var env (no_frame ()) name with
  | Some cell -> decay_id env cell
  | None ->
    if name = "NULL" then (Value.Vnull, A.Tptr A.Tvoid)
    else raise (I.Runtime_error ("unbound identifier " ^ name, loc))

let global_lvalue env name loc =
  match I.find_var env (no_frame ()) name with
  | Some cell -> cell
  | None -> raise (I.Runtime_error ("unbound identifier " ^ name, loc))

type activation = {
  env : I.env;
  prog : B.program;
  slots : (Value.ptr * A.ctype) option array;
  stack : (Value.t * A.ctype) array;
  mutable sp : int;
  mutable decs : bool option array list;
  mutable handlers : (int * int * int) list;  (** target pc, sp, dec depth *)
}

let slot_cell act slot name loc =
  let cell = if slot >= 0 then act.slots.(slot) else None in
  match cell with
  | Some c -> c
  | None -> global_lvalue act.env name loc

let local_rvalue act slot name loc =
  let cell = if slot >= 0 then act.slots.(slot) else None in
  match cell with
  | Some c -> decay_id act.env c
  | None -> global_rvalue act.env name loc

let operand_rvalue act = function
  | B.Oconst i -> act.prog.B.p_pool.(i)
  | B.Oslot (slot, name, loc) -> local_rvalue act slot name loc

let push act v =
  act.stack.(act.sp) <- v;
  act.sp <- act.sp + 1

let pop act =
  act.sp <- act.sp - 1;
  act.stack.(act.sp)

(* fused operand or top of stack *)
let take act = function Some op -> operand_rvalue act op | None -> pop act

(* typed binary operator: pointer +/- int uses the pointee stride, the
   rest is [Interp.arith_binop]; result type from the result value *)
let binop_apply env op (va, ta) (vb, _) loc =
  let result =
    match (op, va, vb) with
    | (A.Add | A.Sub), Value.Vptr p, _
      when not (match vb with Value.Vptr _ -> true | _ -> false) ->
      let stride = I.size_of env (I.pointee env ta) in
      let n = Int64.to_int (Value.as_int vb) * stride in
      Value.Vptr (Memory.shift p (if op = A.Add then n else -n))
    | _ -> I.arith_binop env op va vb loc
  in
  let ty =
    match result with
    | Value.Vbool _ -> A.Tbool
    | Value.Vfloat _ -> A.Tdouble
    | Value.Vptr _ -> ta
    | _ -> A.int_t
  in
  (result, ty)

let incdec_new old delta =
  match old with
  | Value.Vptr q -> Value.Vptr (Memory.shift q delta)
  | Value.Vfloat f -> Value.Vfloat (f +. float_of_int delta)
  | v -> Value.Vint (Int64.add (Value.as_int v) (Int64.of_int delta))

let assign_op_binop = function
  | A.A_add -> A.Add
  | A.A_sub -> A.Sub
  | A.A_mul -> A.Mul
  | A.A_div -> A.Div
  | A.A_mod -> A.Mod
  | A.A_shl -> A.Shl
  | A.A_shr -> A.Shr
  | A.A_and -> A.Band
  | A.A_or -> A.Bor
  | A.A_xor -> A.Bxor
  | A.A_eq -> assert false

(* store into an lvalue cell; whole-struct assignment copies the block *)
let assign_store env op (p, ty) rv loc =
  match (I.strip_const ty, rv) with
  | A.Tnamed name, Value.Vptr src when Hashtbl.mem env.I.layouts name ->
    Memory.copy env.I.mem ~src ~dst:p (I.size_of env ty);
    (Value.Vptr p, ty)
  | _ ->
    let newv =
      match op with
      | A.A_eq -> I.convert_to ty rv
      | _ ->
        let old = Memory.load env.I.mem p in
        I.convert_to ty (I.arith_binop env (assign_op_binop op) old rv loc)
    in
    Memory.store env.I.mem p newv;
    (newv, ty)

let member_cell env (p, record_ty) field loc =
  let record_name =
    match I.strip_const record_ty with
    | A.Tnamed n -> n
    | _ -> raise (I.Runtime_error ("member access on non-struct", loc))
  in
  match Hashtbl.find_opt env.I.layouts record_name with
  | None -> raise (I.Runtime_error ("unknown struct " ^ record_name, loc))
  | Some l -> (
      match List.assoc_opt field l.I.l_fields with
      | None ->
        raise
          (I.Runtime_error (Printf.sprintf "no field %s in %s" field record_name, loc))
      | Some (off, fty) -> (Memory.shift p off, fty))

let arrow_base env (v, ty) loc =
  match v with
  | Value.Vptr p -> (p, I.pointee env ty)
  | Value.Vnull -> raise (I.Runtime_error ("null -> access", loc))
  | _ -> raise (I.Runtime_error ("-> on non-pointer", loc))

let index_cell env (va, ta) idx loc =
  match va with
  | Value.Vptr p ->
    let elem = I.pointee env ta in
    (Memory.shift p (idx * I.size_of env elem), elem)
  | Value.Vnull -> raise (I.Runtime_error ("index of null pointer", loc))
  | _ -> raise (I.Runtime_error ("index of non-pointer", loc))

let declare_cell env ty =
  Memory.alloc env.I.mem ~init:(I.default_value ty) (Stdlib.max 1 (I.size_of env ty))

let probe (env : I.env) sid =
  env.I.hooks.I.on_stmt sid;
  if env.I.cur_fn <> "" then env.I.hooks.I.on_function_stmt env.I.cur_fn

let probe_opt env = function Some sid -> probe env sid | None -> ()

let truncate_decs act depth =
  let rec go l = if List.length l <= depth then l else go (List.tl l) in
  act.decs <- go act.decs

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let rec exec_call (env : I.env) (prog : B.program) fidx (args : Value.t list) : Value.t
    =
  let cf = prog.B.p_fns.(fidx) in
  let fn = cf.B.cf_func in
  env.I.hooks.I.on_call cf.B.cf_qname;
  let caller_fn = env.I.cur_fn in
  env.I.cur_fn <- cf.B.cf_qname;
  Fun.protect ~finally:(fun () -> env.I.cur_fn <- caller_fn) @@ fun () ->
  let slots = Array.make (Stdlib.max 1 cf.B.cf_n_slots) None in
  List.iteri
    (fun i (p : A.param) ->
      let v = try List.nth args i with _ -> I.default_value p.A.p_type in
      let ty = p.A.p_type in
      let slot = cf.B.cf_param_slots.(i) in
      match (ty, v) with
      | A.Tref inner, Value.Vptr ptr -> slots.(slot) <- Some (ptr, inner)
      | _ -> (
          match (I.strip_const ty, v) with
          | A.Tnamed _, Value.Vptr src ->
            let size = I.size_of env ty in
            let dst = Memory.alloc env.I.mem size in
            Memory.copy env.I.mem ~src ~dst size;
            slots.(slot) <- Some (dst, ty)
          | _ ->
            let cell = Memory.alloc env.I.mem 1 in
            Memory.store env.I.mem cell (I.convert_to ty v);
            slots.(slot) <- Some (cell, ty)))
    fn.A.f_params;
  let act =
    {
      env;
      prog;
      slots;
      stack = Array.make (Stdlib.max 1 cf.B.cf_max_stack) (Value.Vvoid, A.Tvoid);
      sp = 0;
      decs = [];
      handlers = [];
    }
  in
  let code = cf.B.cf_code in
  let locs = cf.B.cf_locs in
  let len = Array.length code in
  let rec step pc : Value.t =
    if pc >= len then Value.Vvoid
    else begin
      I.tick env locs.(pc);
      match code.(pc) with
      | B.Iconst i ->
        push act prog.B.p_pool.(i);
        step (pc + 1)
      | B.Ilocal { slot; name; loc } ->
        push act (local_rvalue act slot name loc);
        step (pc + 1)
      | B.Iglobal { name; loc } ->
        push act (global_rvalue env name loc);
        step (pc + 1)
      | B.Icuda_dim key ->
        push act
          ( Value.Vint (Option.value ~default:0L (List.assoc_opt key env.I.cuda_dims)),
            A.int_t );
        step (pc + 1)
      | B.Ilv_local { slot; name; loc } ->
        let p, ty = slot_cell act slot name loc in
        push act (Value.Vptr p, ty);
        step (pc + 1)
      | B.Ilv_global { name; loc } ->
        let p, ty = global_lvalue env name loc in
        push act (Value.Vptr p, ty);
        step (pc + 1)
      | B.Ilv_deref loc ->
        (match pop act with
         | Value.Vptr p, ty -> push act (Value.Vptr p, I.pointee env ty)
         | Value.Vnull, _ -> raise (I.Runtime_error ("null pointer dereference", loc))
         | _ -> raise (I.Runtime_error ("dereference of non-pointer", loc)));
        step (pc + 1)
      | B.Iindex { base; idx; want_load; loc } ->
        (* stack order is base below idx, so the index pops first *)
        let iv = match idx with Some op -> operand_rvalue act op | None -> pop act in
        let bv = take act base in
        let n = Int64.to_int (Value.as_int (fst iv)) in
        let cell = index_cell env bv n loc in
        push act (if want_load then load_or_ptr env cell else (Value.Vptr (fst cell), snd cell));
        step (pc + 1)
      | B.Imember { arrow; base; field; want_load; loc } ->
        let cell =
          if arrow then arrow_base env (take act base) loc
          else
            match base with
            | Some (B.Oslot (slot, name, id_loc)) -> slot_cell act slot name id_loc
            | Some (B.Oconst i) ->
              (* a constant can never be a struct lvalue; report exactly
                 what the tree-walker's member lookup would *)
              ignore prog.B.p_pool.(i);
              raise (I.Runtime_error ("expression is not an lvalue", loc))
            | None ->
              let v, ty = pop act in
              (match v with
               | Value.Vptr p -> (p, ty)
               | _ -> raise (I.Runtime_error ("expression is not an lvalue", loc)))
        in
        let cell = member_cell env cell field loc in
        push act (if want_load then load_or_ptr env cell else (Value.Vptr (fst cell), snd cell));
        step (pc + 1)
      | B.Ilv_cast ty ->
        let v, _ = pop act in
        push act (v, ty);
        step (pc + 1)
      | B.Ilv_load ->
        (match pop act with
         | Value.Vptr p, ty -> push act (Memory.load env.I.mem p, ty)
         | _ -> raise (I.Runtime_error ("dereference of non-pointer", locs.(pc))));
        step (pc + 1)
      | B.Ideref_load loc ->
        (match pop act with
         | Value.Vptr p, ty ->
           let elem = I.pointee env ty in
           push act
             (match I.strip_const elem with
              | A.Tnamed _ -> (Value.Vptr p, elem)
              | _ -> (Memory.load env.I.mem p, elem))
         | Value.Vnull, _ -> raise (I.Runtime_error ("null pointer dereference", loc))
         | _ -> raise (I.Runtime_error ("dereference of non-pointer", loc)));
        step (pc + 1)
      | B.Iaddr_of ->
        let v, ty = pop act in
        push act (v, A.Tptr ty);
        step (pc + 1)
      | B.Iaddr_local { slot; name; loc } ->
        let p, ty = slot_cell act slot name loc in
        push act (Value.Vptr p, A.Tptr ty);
        step (pc + 1)
      | B.Iunop { op; loc } ->
        let v, ty = pop act in
        (match op with
         | A.Neg ->
           push act
             (match v with
              | Value.Vfloat f -> (Value.Vfloat (-.f), ty)
              | v -> (Value.Vint (Int64.neg (Value.as_int v)), ty))
         | A.Lnot -> push act (Value.Vbool (not (Value.truthy v)), A.Tbool)
         | A.Bnot -> push act (Value.Vint (Int64.lognot (Value.as_int v)), A.int_t)
         | A.Pos | A.Pre_inc | A.Pre_dec | A.Deref | A.Addr_of ->
           raise (I.Runtime_error ("unexpected unary opcode", loc)));
        step (pc + 1)
      | B.Iincdec { pre; delta; drop } ->
        let pv, ty = pop act in
        let p = match pv with Value.Vptr p -> p | _ -> assert false in
        let old = Memory.load env.I.mem p in
        let nv = incdec_new old delta in
        Memory.store env.I.mem p nv;
        if not drop then push act ((if pre then nv else old), ty);
        step (pc + 1)
      | B.Iincdec_local { slot; name; pre; delta; drop; loc } ->
        let p, ty = slot_cell act slot name loc in
        let old = Memory.load env.I.mem p in
        let nv = incdec_new old delta in
        Memory.store env.I.mem p nv;
        if not drop then push act ((if pre then nv else old), ty);
        step (pc + 1)
      | B.Ibinop { op; rhs; loc } ->
        let b = match rhs with Some o -> operand_rvalue act o | None -> pop act in
        let a = pop act in
        push act (binop_apply env op a b loc);
        step (pc + 1)
      | B.Ibinop2 { op; lhs; rhs; loc } ->
        let a = operand_rvalue act lhs in
        let b = operand_rvalue act rhs in
        push act (binop_apply env op a b loc);
        step (pc + 1)
      | B.Iassign { op; drop; loc } ->
        let rv, _ = pop act in
        let pv, ty = pop act in
        let p = match pv with Value.Vptr p -> p | _ -> assert false in
        let r = assign_store env op (p, ty) rv loc in
        if not drop then push act r;
        step (pc + 1)
      | B.Iassign_local { op; slot; name; drop; loc; id_loc } ->
        let rv, _ = pop act in
        let cell = slot_cell act slot name id_loc in
        let r = assign_store env op cell rv loc in
        if not drop then push act r;
        step (pc + 1)
      | B.Ipop ->
        ignore (pop act);
        step (pc + 1)
      | B.Icast ty ->
        let v, _ = pop act in
        push act (I.convert_to ty v, ty);
        step (pc + 1)
      | B.Isizeof_type ty ->
        push act (Value.Vint (Int64.of_int (I.size_of env ty)), A.int_t);
        step (pc + 1)
      | B.Isizeof_expr ->
        let _, ty = pop act in
        push act (Value.Vint (Int64.of_int (I.size_of env ty)), A.int_t);
        step (pc + 1)
      | B.Inew { ty; has_size } ->
        let n = if has_size then Int64.to_int (Value.as_int (fst (pop act))) else 1 in
        let p = Memory.alloc env.I.mem ~init:(I.default_value ty) (n * I.size_of env ty) in
        push act (Value.Vptr p, A.Tptr ty);
        step (pc + 1)
      | B.Idelete { drop; loc } ->
        (match fst (pop act) with
         | Value.Vptr p -> Memory.free env.I.mem p
         | Value.Vnull -> ()
         | _ -> raise (I.Runtime_error ("delete of non-pointer", loc)));
        if not drop then push act (Value.Vvoid, A.Tvoid);
        step (pc + 1)
      | B.Ithrow { has_value } ->
        raise (I.Cxx_throw (if has_value then fst (pop act) else Value.Vint 0L))
      | B.Ias_int ->
        let v, _ = pop act in
        push act (Value.Vint (Value.as_int v), A.int_t);
        step (pc + 1)
      | B.Ijump t -> step !t
      | B.Ibranch { value; jt; jf } ->
        step (if Value.truthy (fst (take act value)) then !jt else !jf)
      | B.Idecide { deid; leid; negate; value; jt; jf } ->
        let v = Value.truthy (fst (take act value)) in
        let outcome = if negate then not v else v in
        env.I.hooks.I.on_decision deid [ (leid, Some v) ] outcome;
        step (if outcome then !jt else !jf)
      | B.Idec_begin n ->
        act.decs <- Array.make n None :: act.decs;
        step (pc + 1)
      | B.Ileaf { idx; value; jt; jf } ->
        let v = Value.truthy (fst (take act value)) in
        (List.hd act.decs).(idx) <- Some v;
        step (if v then !jt else !jf)
      | B.Idec_report { deid; leids; outcome; next } ->
        let vec = List.hd act.decs in
        act.decs <- List.tl act.decs;
        let vector = Array.to_list (Array.mapi (fun i o -> (leids.(i), o)) vec) in
        env.I.hooks.I.on_decision deid vector outcome;
        step !next
      | B.Iprobe sid ->
        probe env sid;
        step (pc + 1)
      | B.Ideclare { slot; ty; sid } ->
        probe_opt env sid;
        let p = declare_cell env ty in
        if slot >= 0 then act.slots.(slot) <- Some (p, ty);
        step (pc + 1)
      | B.Ideclare_const { slot; ty; cidx; sid } ->
        probe_opt env sid;
        let p = declare_cell env ty in
        Memory.store env.I.mem p (I.convert_to ty (fst prog.B.p_pool.(cidx)));
        if slot >= 0 then act.slots.(slot) <- Some (p, ty);
        step (pc + 1)
      | B.Ideclare_alloc { ty; sid } ->
        probe_opt env sid;
        let p = declare_cell env ty in
        push act (Value.Vptr p, ty);
        step (pc + 1)
      | B.Ideclare_init { slot; ty } ->
        let v, _ = pop act in
        let pv, _ = pop act in
        let p = match pv with Value.Vptr p -> p | _ -> assert false in
        (match (I.strip_const ty, v) with
         | A.Tnamed _, Value.Vptr src ->
           Memory.copy env.I.mem ~src ~dst:p (I.size_of env ty)
         | _ -> Memory.store env.I.mem p (I.convert_to ty v));
        if slot >= 0 then act.slots.(slot) <- Some (p, ty);
        step (pc + 1)
      | B.Iswitch { cases; case_clauses; default; sid; end_ } ->
        let v = Value.as_int (fst (pop act)) in
        let n = Array.length cases in
        let rec find i =
          if i >= n then None
          else if Int64.equal (fst cases.(i)) v then Some i
          else find (i + 1)
        in
        (match find 0 with
         | Some i ->
           env.I.hooks.I.on_switch sid case_clauses.(i);
           step !(snd cases.(i))
         | None -> (
             match default with
             | Some (t, clause) ->
               env.I.hooks.I.on_switch sid clause;
               step !t
             | None -> step !end_))
      | B.Iswitch_dyn { ncases; targets; case_clauses; default; sid; end_ } ->
        (* case values sit above the coerced scrutinee, in case order *)
        let cvs = Array.make ncases (Value.Vvoid, A.Tvoid) in
        for i = ncases - 1 downto 0 do
          cvs.(i) <- pop act
        done;
        let v = Value.as_int (fst (pop act)) in
        let rec find i =
          if i >= ncases then None
          else if Int64.equal (Value.as_int (fst cvs.(i))) v then Some i
          else find (i + 1)
        in
        (match find 0 with
         | Some i ->
           env.I.hooks.I.on_switch sid case_clauses.(i);
           step !(targets.(i))
         | None -> (
             match default with
             | Some (t, clause) ->
               env.I.hooks.I.on_switch sid clause;
               step !t
             | None -> step !end_))
      | B.Icall { fidx; nargs; drop } ->
        let args = ref [] in
        for _ = 1 to nargs do
          args := fst (pop act) :: !args
        done;
        let v = exec_call env prog fidx !args in
        if not drop then
          push act (v, prog.B.p_fns.(fidx).B.cf_func.A.f_ret);
        step (pc + 1)
      | B.Ibuiltin { name; nargs; drop; loc } ->
        let args = ref [] in
        for _ = 1 to nargs do
          args := fst (pop act) :: !args
        done;
        let bfn =
          match Builtins.lookup name with Some b -> b | None -> assert false
        in
        let v = Builtins.apply bfn (I.builtin_ctx env (no_frame ())) !args loc in
        if not drop then push act (v, A.Tauto);
        step (pc + 1)
      | B.Ikernel_prep { fidx; nargs = _; loc } ->
        (* grid and block are on the stack; coerce both to ints, check
           positivity and fire the launch hook before the args run *)
        let gi = act.sp - 2 and bi = act.sp - 1 in
        let gridv = Int64.to_int (Value.as_int (fst act.stack.(gi))) in
        let blockv = Int64.to_int (Value.as_int (fst act.stack.(bi))) in
        if gridv <= 0 || blockv <= 0 then
          raise (I.Runtime_error ("non-positive launch configuration", loc));
        env.I.hooks.I.on_kernel_launch
          prog.B.p_fns.(fidx).B.cf_qname
          ~grid:gridv ~block:blockv;
        act.stack.(gi) <- (Value.Vint (Int64.of_int gridv), A.int_t);
        act.stack.(bi) <- (Value.Vint (Int64.of_int blockv), A.int_t);
        step (pc + 1)
      | B.Ikernel_run { fidx; nargs } ->
        let args = ref [] in
        for _ = 1 to nargs do
          args := fst (pop act) :: !args
        done;
        let blockv = Int64.to_int (Value.as_int (fst (pop act))) in
        let gridv = Int64.to_int (Value.as_int (fst (pop act))) in
        let saved = env.I.cuda_dims in
        (try
           for b = 0 to gridv - 1 do
             for t = 0 to blockv - 1 do
               env.I.cuda_dims <-
                 [
                   ("threadIdx.x", Int64.of_int t);
                   ("blockIdx.x", Int64.of_int b);
                   ("blockDim.x", Int64.of_int blockv);
                   ("gridDim.x", Int64.of_int gridv);
                   ("threadIdx.y", 0L); ("blockIdx.y", 0L);
                   ("blockDim.y", 1L); ("gridDim.y", 1L);
                 ];
               ignore (exec_call env prog fidx !args)
             done
           done
         with ex ->
           env.I.cuda_dims <- saved;
           raise ex);
        env.I.cuda_dims <- saved;
        step (pc + 1)
      | B.Ipush_handler t ->
        act.handlers <- (!t, act.sp, List.length act.decs) :: act.handlers;
        step (pc + 1)
      | B.Ipop_handlers n ->
        for _ = 1 to n do
          act.handlers <- List.tl act.handlers
        done;
        step (pc + 1)
      | B.Iraise { msg; loc } -> raise (I.Runtime_error (msg, loc))
      | B.Iraise_goto l -> raise (I.Goto_signal l)
      | B.Iraise_sig `Break -> raise I.Break_signal
      | B.Iraise_sig `Continue -> raise I.Continue_signal
      | B.Ireturn { value; has_value; sid } ->
        probe_opt env sid;
        (match value with
         | Some op -> fst (operand_rvalue act op)
         | None -> if has_value then fst (pop act) else Value.Vvoid)
    end
  in
  (* activation-level C++-exception dispatch: a throw unwinds to this
     activation's innermost handler (restoring the value and decision
     stacks to their push-time depths), or re-raises past it — the
     OCaml exception then keeps unwinding callers exactly like the
     tree-walker's [Stry] *)
  let rec guarded pc =
    try step pc with
    | I.Cxx_throw v -> (
        match act.handlers with
        | (tpc, tsp, tdec) :: rest ->
          act.handlers <- rest;
          act.sp <- tsp;
          truncate_decs act tdec;
          guarded tpc
        | [] -> raise (I.Cxx_throw v))
  in
  guarded 0

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let resolve_fidx (prog : B.program) name =
  match Hashtbl.find_opt prog.B.p_index name with
  | Some i -> Some i
  | None ->
    Hashtbl.fold
      (fun key i acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Util.Strutil.ends_with ~suffix:("::" ^ name) key then Some i else None)
      prog.B.p_index None

(* the same result protocol as [Interp.run], minus the loading (a
   program is loaded once with [load] and reused across entries) *)
let run_entry (env : I.env) (prog : B.program) ~entry ~args =
  match resolve_fidx prog entry with
  | None -> Error (Printf.sprintf "entry function %s not found" entry)
  | Some fidx -> (
      try Ok (exec_call env prog fidx args) with
      | I.Runtime_error (msg, loc) ->
        Error (Printf.sprintf "%s: %s" (Cfront.Loc.to_string loc) msg)
      | Memory.Fault msg -> Error ("memory fault: " ^ msg)
      | Builtins.Builtin_error msg -> Error ("builtin error: " ^ msg)
      | I.Step_limit_exceeded -> Error "step limit exceeded"
      | I.Cxx_throw v -> Error ("uncaught C++ exception: " ^ Value.to_string v))

let run (env : I.env) (prog : B.program) ~entry ~args =
  load env prog;
  run_entry env prog ~entry ~args

let run_entries (env : I.env) (prog : B.program) ~entries =
  List.map (fun entry -> (entry, run_entry env prog ~entry ~args:[])) entries
