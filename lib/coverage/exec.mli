(** Bytecode dispatch loop: runs a {!Bytecode.program} against an
    {!Interp.env} with hook events, memory effects, output and error
    messages byte-identical to the tree-walker, in strictly fewer
    {!Interp.tick} steps.  [test/test_bytecode_diff.ml] holds the two
    engines to that contract. *)

(** Load the program's translation units into the environment — this is
    [Interp.load_tu] verbatim, so globals, enums, layouts and the
    function table match the tree-walker's exactly. *)
val load : Interp.env -> Bytecode.program -> unit

(** Call one entry point in an already-loaded environment.  Same result
    protocol as {!Interp.run}: runtime errors, memory faults, builtin
    errors, step-limit exhaustion and uncaught C++ exceptions come back
    as the same [Error] strings. *)
val run_entry :
  Interp.env ->
  Bytecode.program ->
  entry:string ->
  args:Value.t list ->
  (Value.t, string) result

(** [load] then [run_entry] — the {!Interp.run} shape. *)
val run :
  Interp.env ->
  Bytecode.program ->
  entry:string ->
  args:Value.t list ->
  (Value.t, string) result

(** Call each entry in order in the same (already loaded) environment;
    a failing entry does not stop the rest. *)
val run_entries :
  Interp.env ->
  Bytecode.program ->
  entries:string list ->
  (string * (Value.t, string) result) list
