(** Runtime coverage collector: aggregates interpreter hook events and
    joins them with the static {!Instrument} points into per-function and
    per-file coverage reports (statement, branch, MC/DC, function). *)

type t = {
  stmt_hits : (int, int) Hashtbl.t;  (** statement id -> hit count *)
  decision_outcomes : (int * bool, int) Hashtbl.t;  (** (decision eid, outcome) *)
  switch_hits : (int * int, int) Hashtbl.t;  (** (switch sid, clause index) *)
  calls : (string, int) Hashtbl.t;  (** qualified function name -> entries *)
  kernel_launches : (string, int) Hashtbl.t;
  mcdc : Mcdc.t;
}

val create : unit -> t

(** Hooks that feed this collector; pass to {!Interp.create}. *)
val hooks : t -> Interp.hooks

val function_called : t -> string -> bool

(** [merge_into ~into src] adds [src]'s state into [into]: hit tables by
    per-key count sum, MC/DC logs by vector-set union.  Both operators
    are commutative and associative, and every score is a membership
    test on the key set (or an existential over the vector set), so the
    merge of per-scenario collectors equals the one-collector sequential
    run exactly — the scenario-parallel engine's correctness argument
    (see DESIGN.md). *)
val merge_into : into:t -> t -> unit

(** Merge a list of collectors (left to right) into a fresh one. *)
val merge : t list -> t

(** Deterministic, canonically-ordered rendering of the complete state:
    equal fingerprints iff the collectors are observationally identical.
    The differential suite compares fingerprints across jobs values; the
    property tests across random partitions and merge orders. *)
val fingerprint : t -> string

type func_coverage = {
  fp : Instrument.func_points;
  called : bool;
  stmts_hit : int;
  stmts_total : int;
  branches_hit : int;
  branches_total : int;
  conditions_hit : int;
  conditions_total : int;
}

(** Score one function.  [mcdc_mode] selects the MC/DC pairing
    discipline (see {!Mcdc.mode}); the default is short-circuit masking. *)
val score_function : ?mcdc_mode:Mcdc.mode -> t -> Instrument.func_points -> func_coverage

type file_coverage = {
  file : string;
  functions : func_coverage list;  (** called functions only *)
  excluded : int;  (** never-called functions, excluded as in the paper *)
  stmt_pct : float;
  branch_pct : float;
  mcdc_pct : float;
  function_pct : float;  (** fraction of defined functions entered at all *)
}

(** Score a file: percentages aggregate over called functions only (the
    paper "excluded all those functions that were not called"). *)
val score_file :
  ?mcdc_mode:Mcdc.mode -> t -> file:string -> Instrument.func_points list -> file_coverage

(** Unweighted per-file means of (statement, branch, MC/DC) percentages,
    matching the paper's Figure 5 averages. *)
val averages : file_coverage list -> float * float * float
