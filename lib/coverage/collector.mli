(** Runtime coverage collector: aggregates interpreter hook events and
    joins them with the static {!Instrument} points into per-function and
    per-file coverage reports (statement, branch, MC/DC, function). *)

type t = {
  origin : string;  (** scenario name attributions carry, "" when unnamed *)
  stmt_hits : (int, int) Hashtbl.t;  (** statement id -> hit count *)
  decision_outcomes : (int * bool, int) Hashtbl.t;  (** (decision eid, outcome) *)
  switch_hits : (int * int, int) Hashtbl.t;  (** (switch sid, clause index) *)
  calls : (string, int) Hashtbl.t;  (** qualified function name -> entries *)
  kernel_launches : (string, int) Hashtbl.t;
  mcdc : Mcdc.t;
  stmt_first : (int, string) Hashtbl.t;
      (** statement id -> first-covering scenario (merge: least name wins) *)
  decision_first : (int * bool, string) Hashtbl.t;
      (** (decision eid, outcome) -> first-covering scenario *)
}

(** [origin] names the scenario this collector records for; attribution
    tables stay empty when it is omitted, so unnamed collectors (tests,
    single-run tools) behave exactly as before. *)
val create : ?origin:string -> unit -> t

(** Hooks that feed this collector; pass to {!Interp.create}. *)
val hooks : t -> Interp.hooks

val function_called : t -> string -> bool

(** [merge_into ~into src] adds [src]'s state into [into]: hit tables by
    per-key count sum, MC/DC logs by vector-set union, attribution
    tables by least scenario name.  All three operators are commutative
    and associative (min also idempotent), and every score is a
    membership test on the key set (or an existential over the vector
    set), so the merge of per-scenario collectors equals the
    one-collector sequential run exactly — the scenario-parallel
    engine's correctness argument (see DESIGN.md). *)
val merge_into : into:t -> t -> unit

(** Merge a list of collectors (left to right) into a fresh one. *)
val merge : t list -> t

(** Deterministic, canonically-ordered rendering of the complete state:
    equal fingerprints iff the collectors are observationally identical.
    The differential suite compares fingerprints across jobs values; the
    property tests across random partitions and merge orders. *)
val fingerprint : t -> string

type func_coverage = {
  fp : Instrument.func_points;
  called : bool;
  stmts_hit : int;
  stmts_total : int;
  branches_hit : int;
  branches_total : int;
  conditions_hit : int;
  conditions_total : int;
  first_covered_by : string option;
      (** least-named scenario covering any of the function's statements *)
}

(** First-covering scenario of a statement / decision outcome, when the
    collectors that observed it were created with an [origin]. *)
val first_covering_stmt : t -> int -> string option
val first_covering_decision : t -> int -> bool -> string option

(** Score one function.  [mcdc_mode] selects the MC/DC pairing
    discipline (see {!Mcdc.mode}); the default is short-circuit masking. *)
val score_function : ?mcdc_mode:Mcdc.mode -> t -> Instrument.func_points -> func_coverage

type file_coverage = {
  file : string;
  functions : func_coverage list;  (** called functions only *)
  excluded : int;  (** never-called functions, excluded as in the paper *)
  stmt_pct : float;
  branch_pct : float;
  mcdc_pct : float;
  function_pct : float;  (** fraction of defined functions entered at all *)
}

(** Score a file: percentages aggregate over called functions only (the
    paper "excluded all those functions that were not called"). *)
val score_file :
  ?mcdc_mode:Mcdc.mode -> t -> file:string -> Instrument.func_points list -> file_coverage

(** Unweighted per-file means of (statement, branch, MC/DC) percentages,
    matching the paper's Figure 5 averages. *)
val averages : file_coverage list -> float * float * float
