(** Scenario-parallel coverage execution.

    A scenario is one independent dynamic experiment: a set of
    translation units plus the entry points to drive through them, in
    order, inside one fresh interpreter environment with its own
    {!Collector}.  Because scenarios share no mutable state, {!run_all}
    fans them out over the worker pool ([Telemetry.parallel_map], so
    jobs=1 is literally [List.map] — the sequential oracle) and the
    caller merges the per-scenario collectors.

    {b Merge exactness.}  The merge ({!Collector.merge_into}) is a
    per-key sum of hit counts plus an MC/DC vector-set union.  Both
    operators are commutative and associative, and every coverage score
    reads only key membership (count > 0) or existential properties of
    the vector set, so the merged collector is {e equal} to what one
    collector observing all scenarios sequentially would hold — exact,
    not approximate, at any jobs value and any partition of the scenario
    list.  [test/test_parallel_determinism.ml] enforces this
    differentially and [test/test_coverage.ml] property-tests random
    partitions.

    Scenarios whose hit sets must merge meaningfully must share the
    {e same parse} of the measured units (statement/decision ids are
    assigned at parse time); see [Corpus.Scenario_set]. *)

type t = {
  sc_name : string;
  sc_tus : Cfront.Ast.tu list;
      (** immutable parsed units; measured units must be physically
          shared across scenarios for their hit sets to merge *)
  sc_entries : string list;  (** entry points called in order *)
}

type outcome = {
  o_name : string;
  o_collector : Collector.t;  (** this scenario's private collector *)
  o_results : (string * (Value.t, string) result) list;
      (** per-entry results, in call order; errors are data here (the
          fault-injection scenarios expect them), not exceptions *)
  o_output : string;  (** everything the scenario printed *)
  o_steps : int;
      (** [env.steps] after the run — AST nodes visited (tree) or
          instructions dispatched (bytecode); the `compile` bench's
          work-tier counter *)
}

(** Which interpreter executes the scenario's entries.  Both engines
    produce byte-identical coverage, results and output
    ([test/test_bytecode_diff.ml] enforces it); [Bytecode] does so in
    fewer [env.steps].  [Tree] remains the differential oracle and the
    default. *)
type engine = Tree | Bytecode

val engine_name : engine -> string
val engine_of_string : string -> engine option

(** Run one scenario in a fresh environment (telemetry hooks layered over
    the collector's).  With [~engine:Bytecode], [?program] supplies a
    pre-compiled program for the scenario's exact tu list (compiled on
    the spot otherwise). *)
val run_one : ?engine:engine -> ?program:Bytecode.program -> t -> outcome

(** Run every scenario across the pool; outcomes in input order.  At
    jobs=1 this is exactly [List.map run_one].  Under [Bytecode], each
    distinct parse in the list is compiled once up front and the
    immutable program is shared by all worker domains. *)
val run_all : ?engine:engine -> t list -> outcome list

(** Union of all outcome collectors, merged in list order. *)
val merged_collector : outcome list -> Collector.t

(** Score per-file coverage for the [measured] paths of [tus] under a
    (possibly merged) collector. *)
val score :
  Collector.t ->
  measured:string list ->
  Cfront.Ast.tu list ->
  Collector.file_coverage list

(** Every failing (scenario, entry, error) triple, in outcome order. *)
val failures : outcome list -> (string * string * string) list
