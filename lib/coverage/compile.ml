(** One-pass compiler from the shared Cfront AST to {!Bytecode}.

    The compiler is a transcription of {!Interp}'s tree-walking rules
    into a flat instruction stream; anything the tree-walker resolves
    per execution that is statically knowable — enum constants, call
    targets (including the namespace-suffix fallback), switch case
    values, single-slot local bindings — is resolved here once.  The
    replica symbol tables are built with the {e same} insertion sequence
    [Interp.load_tu] uses on [env.funcs]/[env.enums], so compile-time
    suffix resolution walks the very same bucket order the tree-walker
    walks at run time.

    Evaluation-order discipline for operand fusion: a fused operand is
    resolved at dispatch time, i.e. {e after} any stacked sub-expression
    instructions have run.  The left-hand side of a binary operator (or
    the base of an index) is therefore only fused when the right-hand
    side is fused too, keeping the tree-walker's left-to-right effect
    and error order intact. *)

module A = Cfront.Ast
module B = Bytecode

(* ------------------------------------------------------------------ *)
(* Compilation contexts                                                *)
(* ------------------------------------------------------------------ *)

(* program-wide state shared by every function being compiled *)
type pctx = {
  enums : (string, int64) Hashtbl.t;
  findex : (string, int) Hashtbl.t;
  fns : A.func array;
  mutable pool_rev : (Value.t * A.ctype) list;
  mutable pool_len : int;
  pool_tbl : (Value.t * A.ctype, int) Hashtbl.t;
}

(* per-function state: name->slot map plus the growing code buffer *)
type fctx = {
  p : pctx;
  slots : (string, int) Hashtbl.t;
  mutable code : B.instr array;
  mutable locs : Cfront.Loc.t array;
  mutable len : int;
}

(* statement-position context: break/continue targets and goto label
   scopes, each paired with the try-nesting depth at its binding site so
   a jump out of a [try] emits the right number of handler pops *)
type senv = {
  brk : (int ref * int) option;
  cont : (int ref * int) option;
  labels : (string * (int ref * int)) list list;
  hdepth : int;
}

let emit c instr loc =
  if c.len = Array.length c.code then begin
    let cap = Stdlib.max 64 (2 * c.len) in
    let code = Array.make cap B.Ipop in
    Array.blit c.code 0 code 0 c.len;
    c.code <- code;
    let locs = Array.make cap loc in
    Array.blit c.locs 0 locs 0 c.len;
    c.locs <- locs
  end;
  c.code.(c.len) <- instr;
  c.locs.(c.len) <- loc;
  c.len <- c.len + 1

let bind c r = r := c.len

let pool_add p cv =
  match Hashtbl.find_opt p.pool_tbl cv with
  | Some i -> i
  | None ->
    let i = p.pool_len in
    p.pool_rev <- cv :: p.pool_rev;
    p.pool_len <- i + 1;
    Hashtbl.replace p.pool_tbl cv i;
    i

let emit_const c cv loc = emit c (B.Iconst (pool_add c.p cv)) loc

(* slot of a name, or -1 when the name is never declared locally (the
   instruction then falls straight through to the global lookup) *)
let slot_or c name =
  match Hashtbl.find_opt c.slots name with Some s -> s | None -> -1

(* Static value of an expression the tree-walker would evaluate to a
   constant with no side effects and no possibility of error: literals,
   enum items, and [Neg] of a numeric constant.  The (value, type) pair
   matches [eval_typed] exactly. *)
let rec const_of p (e : A.expr) : (Value.t * A.ctype) option =
  match e.A.e with
  | A.Int_const v -> Some (Value.Vint v, A.int_t)
  | A.Float_const v -> Some (Value.Vfloat v, A.Tdouble)
  | A.Bool_const b -> Some (Value.Vbool b, A.Tbool)
  | A.Str_const s -> Some (Value.Vstr s, A.Tptr A.Tchar)
  | A.Char_const ch -> Some (Value.Vint (Int64.of_int (Char.code ch)), A.Tchar)
  | A.Nullptr -> Some (Value.Vnull, A.Tptr A.Tvoid)
  | A.Id name -> (
      match Hashtbl.find_opt p.enums name with
      | Some v -> Some (Value.Vint v, A.int_t)
      | None -> None)
  | A.Unary (A.Neg, a) -> (
      match const_of p a with
      | Some (Value.Vfloat f, ty) -> Some (Value.Vfloat (-.f), ty)
      | Some (((Value.Vint _ | Value.Vbool _ | Value.Vnull) as v), ty) ->
        Some (Value.Vint (Int64.neg (Value.as_int v)), ty)
      | _ -> None)
  | _ -> None

(* A fusable operand: a constant or an identifier that follows rvalue
   [Id] rules (enum items fold to constants here, so an [Oslot] operand
   never shadows an enum). *)
let operand_of c (e : A.expr) : B.operand option =
  match const_of c.p e with
  | Some cv -> Some (B.Oconst (pool_add c.p cv))
  | None -> (
      match e.A.e with
      | A.Id name -> Some (B.Oslot (slot_or c name, name, e.A.eloc))
      | _ -> None)

let resolve_fidx p name =
  match Hashtbl.find_opt p.findex name with
  | Some i -> Some i
  | None ->
    Hashtbl.fold
      (fun key i acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Util.Strutil.ends_with ~suffix:("::" ^ name) key then Some i
          else None)
      p.findex None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec compile_value c (e : A.expr) =
  let loc = e.A.eloc in
  match e.A.e with
  | A.Int_const _ | A.Float_const _ | A.Bool_const _ | A.Str_const _
  | A.Char_const _ | A.Nullptr ->
    emit_const c (Option.get (const_of c.p e)) loc
  | A.Id name -> (
      match Hashtbl.find_opt c.p.enums name with
      | Some v -> emit_const c (Value.Vint v, A.int_t) loc
      | None -> (
          match Hashtbl.find_opt c.slots name with
          | Some slot -> emit c (B.Ilocal { slot; name; loc }) loc
          | None -> emit c (B.Iglobal { name; loc }) loc))
  | A.Unary (A.Neg, a) -> (
      match const_of c.p e with
      | Some cv -> emit_const c cv loc
      | None ->
        compile_value c a;
        emit c (B.Iunop { op = A.Neg; loc }) loc)
  | A.Unary (A.Pos, a) -> compile_value c a
  | A.Unary ((A.Lnot | A.Bnot) as op, a) ->
    compile_value c a;
    emit c (B.Iunop { op; loc }) loc
  | A.Unary ((A.Pre_inc | A.Pre_dec) as op, a) ->
    compile_incdec c a ~pre:true ~delta:(if op = A.Pre_inc then 1 else -1) ~drop:false
  | A.Unary (A.Deref, a) ->
    compile_value c a;
    emit c (B.Ideref_load loc) loc
  | A.Unary (A.Addr_of, a) -> (
      match a.A.e with
      | A.Id name ->
        emit c (B.Iaddr_local { slot = slot_or c name; name; loc = a.A.eloc }) loc
      | _ ->
        compile_lvalue c a;
        emit c B.Iaddr_of loc)
  | A.Postfix (op, a) ->
    compile_incdec c a ~pre:false
      ~delta:(match op with A.Post_inc -> 1 | A.Post_dec -> -1)
      ~drop:false
  | A.Binary ((A.Land | A.Lor), _, _) -> compile_bare c e
  | A.Binary (A.Comma, a, b) ->
    compile_drop c a;
    compile_value c b
  | A.Binary (op, a, b) -> (
      match (operand_of c a, operand_of c b) with
      | Some lhs, Some rhs -> emit c (B.Ibinop2 { op; lhs; rhs; loc }) loc
      | _, (Some _ as rhs) ->
        compile_value c a;
        emit c (B.Ibinop { op; rhs; loc }) loc
      | _, None ->
        compile_value c a;
        compile_value c b;
        emit c (B.Ibinop { op; rhs = None; loc }) loc)
  | A.Assign (op, lhs, rhs) -> compile_assign c op lhs rhs ~drop:false ~loc
  | A.Ternary (cnd, a, b) ->
    let lt = ref (-1) and lf = ref (-1) and lend = ref (-1) in
    compile_decision c cnd lt lf;
    bind c lt;
    compile_value c a;
    emit c (B.Ijump lend) loc;
    bind c lf;
    compile_value c b;
    bind c lend
  | A.Call (f, args) -> compile_call c f args ~drop:false ~loc
  | A.Kernel_launch { kernel; grid; block; args } ->
    compile_kernel c kernel grid block args ~drop:false ~loc
  | A.Index (a, i) -> compile_index c a i ~want_load:true
  | A.Member { obj; arrow; field } -> (
      match obj.A.e with
      | A.Id base when (not arrow) && List.mem base Interp.cuda_builtin_names ->
        emit c (B.Icuda_dim (base ^ "." ^ field)) loc
      | _ -> compile_member c obj arrow field ~want_load:true ~loc)
  | A.C_cast (ty, a) | A.Cpp_cast (_, ty, a) ->
    compile_value c a;
    emit c (B.Icast ty) loc
  | A.Sizeof_type ty -> emit c (B.Isizeof_type ty) loc
  | A.Sizeof_expr a ->
    compile_value c a;
    emit c B.Isizeof_expr loc
  | A.New { ty; array_size; _ } -> (
      match array_size with
      | Some sz ->
        compile_value c sz;
        emit c (B.Inew { ty; has_size = true }) loc
      | None -> emit c (B.Inew { ty; has_size = false }) loc)
  | A.Delete { target; _ } ->
    compile_value c target;
    emit c (B.Idelete { drop = false; loc }) loc
  | A.Throw None -> emit c (B.Ithrow { has_value = false }) loc
  | A.Throw (Some a) ->
    compile_value c a;
    emit c (B.Ithrow { has_value = true }) loc

(* value discarded: use drop-fused forms and elide pure constants *)
and compile_drop c (e : A.expr) =
  let loc = e.A.eloc in
  match e.A.e with
  | A.Assign (op, lhs, rhs) -> compile_assign c op lhs rhs ~drop:true ~loc
  | A.Unary ((A.Pre_inc | A.Pre_dec) as op, a) ->
    compile_incdec c a ~pre:true ~delta:(if op = A.Pre_inc then 1 else -1) ~drop:true
  | A.Postfix (op, a) ->
    compile_incdec c a ~pre:false
      ~delta:(match op with A.Post_inc -> 1 | A.Post_dec -> -1)
      ~drop:true
  | A.Call (f, args) -> compile_call c f args ~drop:true ~loc
  | A.Kernel_launch { kernel; grid; block; args } ->
    compile_kernel c kernel grid block args ~drop:true ~loc
  | A.Delete { target; _ } ->
    compile_value c target;
    emit c (B.Idelete { drop = true; loc }) loc
  | A.Binary (A.Comma, a, b) ->
    compile_drop c a;
    compile_drop c b
  | A.Int_const _ | A.Float_const _ | A.Bool_const _ | A.Str_const _
  | A.Char_const _ | A.Nullptr ->
    ()
  | A.Throw _ -> compile_value c e
  | _ ->
    compile_value c e;
    emit c B.Ipop loc

and compile_lvalue c (e : A.expr) =
  let loc = e.A.eloc in
  match e.A.e with
  | A.Id name -> (
      match Hashtbl.find_opt c.slots name with
      | Some slot -> emit c (B.Ilv_local { slot; name; loc }) loc
      | None -> emit c (B.Ilv_global { name; loc }) loc)
  | A.Unary (A.Deref, a) ->
    compile_value c a;
    emit c (B.Ilv_deref loc) loc
  | A.Index (a, i) -> compile_index c a i ~want_load:false
  | A.Member { obj; arrow; field } -> compile_member c obj arrow field ~want_load:false ~loc
  | A.C_cast (ty, inner) | A.Cpp_cast (_, ty, inner) ->
    compile_lvalue c inner;
    emit c (B.Ilv_cast ty) loc
  | _ -> emit c (B.Iraise { msg = "expression is not an lvalue"; loc }) loc

and compile_index c a i ~want_load =
  let loc = a.A.eloc in
  match (operand_of c a, operand_of c i) with
  | (Some _ as base), (Some _ as idx) ->
    emit c (B.Iindex { base; idx; want_load; loc }) loc
  | _, (Some _ as idx) ->
    compile_value c a;
    emit c (B.Iindex { base = None; idx; want_load; loc }) loc
  | _, None ->
    compile_value c a;
    compile_value c i;
    emit c (B.Iindex { base = None; idx = None; want_load; loc }) loc

and compile_member c obj arrow field ~want_load ~loc =
  let base =
    if arrow then operand_of c obj
    else
      match obj.A.e with
      | A.Id name -> Some (B.Oslot (slot_or c name, name, obj.A.eloc))
      | _ -> None
  in
  match base with
  | Some _ -> emit c (B.Imember { arrow; base; field; want_load; loc }) loc
  | None ->
    if arrow then compile_value c obj else compile_lvalue c obj;
    emit c (B.Imember { arrow; base = None; field; want_load; loc }) loc

and compile_incdec c (a : A.expr) ~pre ~delta ~drop =
  match a.A.e with
  | A.Id name ->
    emit c
      (B.Iincdec_local { slot = slot_or c name; name; pre; delta; drop; loc = a.A.eloc })
      a.A.eloc
  | _ ->
    compile_lvalue c a;
    emit c (B.Iincdec { pre; delta; drop }) a.A.eloc

and compile_assign c op (lhs : A.expr) rhs ~drop ~loc =
  match lhs.A.e with
  | A.Id name ->
    compile_value c rhs;
    emit c
      (B.Iassign_local
         { op; slot = slot_or c name; name; drop; loc; id_loc = lhs.A.eloc })
      loc
  | _ ->
    compile_lvalue c lhs;
    compile_value c rhs;
    emit c (B.Iassign { op; drop; loc }) loc

(* bare && / || in value position: branch without decision recording,
   materialize the boolean — mirrors [eval_typed]'s fresh-table
   [eval_bool_tree] with no [report_decision] *)
and compile_bare c (e : A.expr) =
  let loc = e.A.eloc in
  let lt = ref (-1) and lf = ref (-1) and lend = ref (-1) in
  compile_btree c e lt lf;
  bind c lt;
  emit_const c (Value.Vbool true, A.Tbool) loc;
  emit c (B.Ijump lend) loc;
  bind c lf;
  emit_const c (Value.Vbool false, A.Tbool) loc;
  bind c lend

and compile_btree c (e : A.expr) jt jf =
  match e.A.e with
  | A.Binary (A.Land, a, b) ->
    let mid = ref (-1) in
    compile_btree c a mid jf;
    bind c mid;
    compile_btree c b jt jf
  | A.Binary (A.Lor, a, b) ->
    let mid = ref (-1) in
    compile_btree c a jt mid;
    bind c mid;
    compile_btree c b jt jf
  | A.Unary (A.Lnot, a) -> compile_btree c a jf jt
  | _ ->
    let value = operand_of c e in
    if value = None then compile_value c e;
    emit c (B.Ibranch { value; jt; jf }) e.A.eloc

(* A control-position decision: short-circuit evaluation plus an
   [on_decision] report carrying the full MC/DC condition vector, in
   [Instrument.leaves_of] order.  Single-leaf decisions fuse the whole
   evaluate-record-report-branch sequence into one [Idecide]. *)
and compile_decision c (cond : A.expr) jt jf =
  match Instrument.leaves_of cond with
  | [ leid ] ->
    let rec peel (e : A.expr) neg =
      match e.A.e with
      | A.Unary (A.Lnot, a) -> peel a (not neg)
      | _ -> (e, neg)
    in
    let leaf, negate = peel cond false in
    let value = operand_of c leaf in
    if value = None then compile_value c leaf;
    emit c
      (B.Idecide { deid = cond.A.eid; leid; negate; value; jt; jf })
      cond.A.eloc
  | leaves ->
    let leids = Array.of_list leaves in
    emit c (B.Idec_begin (Array.length leids)) cond.A.eloc;
    let counter = ref 0 in
    let lt = ref (-1) and lf = ref (-1) in
    compile_ctree c counter cond lt lf;
    bind c lt;
    emit c
      (B.Idec_report { deid = cond.A.eid; leids; outcome = true; next = jt })
      cond.A.eloc;
    bind c lf;
    emit c
      (B.Idec_report { deid = cond.A.eid; leids; outcome = false; next = jf })
      cond.A.eloc

and compile_ctree c counter (e : A.expr) jt jf =
  match e.A.e with
  | A.Binary (A.Land, a, b) ->
    let mid = ref (-1) in
    compile_ctree c counter a mid jf;
    bind c mid;
    compile_ctree c counter b jt jf
  | A.Binary (A.Lor, a, b) ->
    let mid = ref (-1) in
    compile_ctree c counter a jt mid;
    bind c mid;
    compile_ctree c counter b jt jf
  | A.Unary (A.Lnot, a) -> compile_ctree c counter a jf jt
  | _ ->
    let idx = !counter in
    incr counter;
    let value = operand_of c e in
    if value = None then compile_value c e;
    emit c (B.Ileaf { idx; value; jt; jf }) e.A.eloc

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and compile_args c fidx args =
  (* reference parameters receive the argument's address: the lvalue
     instructions push (Vptr p, ty), whose value component is exactly
     the Vptr the tree-walker passes *)
  let params = c.p.fns.(fidx).A.f_params in
  List.iteri
    (fun i (a : A.expr) ->
      let by_ref =
        match List.nth_opt params i with
        | Some prm -> (
            match prm.A.p_type with A.Tref _ -> true | _ -> false)
        | None -> false
      in
      if by_ref then compile_lvalue c a else compile_value c a)
    args

and compile_call c (f : A.expr) args ~drop ~loc =
  let nargs = List.length args in
  match f.A.e with
  | A.Id name -> (
      match Builtins.lookup name with
      | Some _ ->
        List.iter (compile_value c) args;
        emit c (B.Ibuiltin { name; nargs; drop; loc }) loc
      | None -> (
          match resolve_fidx c.p name with
          | Some fidx ->
            compile_args c fidx args;
            emit c (B.Icall { fidx; nargs; drop }) loc
          | None ->
            emit c (B.Iraise { msg = "call to undefined function " ^ name; loc }) loc))
  | A.Member { field; _ } -> (
      (* method-style call: resolved by simple name, object not evaluated *)
      match resolve_fidx c.p field with
      | Some fidx ->
        compile_args c fidx args;
        emit c (B.Icall { fidx; nargs; drop }) loc
      | None -> emit c (B.Iraise { msg = "call to undefined method " ^ field; loc }) loc)
  | _ -> emit c (B.Iraise { msg = "call through non-identifier"; loc }) loc

and compile_kernel c (kernel : A.expr) grid block args ~drop ~loc =
  match kernel.A.e with
  | A.Id name -> (
      match resolve_fidx c.p name with
      | Some fidx ->
        let nargs = List.length args in
        compile_value c grid;
        compile_value c block;
        emit c (B.Ikernel_prep { fidx; nargs; loc }) loc;
        compile_args c fidx args;
        emit c (B.Ikernel_run { fidx; nargs }) loc;
        if not drop then emit_const c (Value.Vvoid, A.Tvoid) loc
      | None ->
        emit c (B.Iraise { msg = "launch of undefined kernel " ^ name; loc }) loc)
  | _ -> emit c (B.Iraise { msg = "kernel launch of non-identifier"; loc }) loc

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let find_label senv l = List.find_map (List.assoc_opt l) senv.labels

let pop_handlers_to c senv target_depth loc =
  if senv.hdepth > target_depth then
    emit c (B.Ipop_handlers (senv.hdepth - target_depth)) loc

let rec compile_stmt c senv (stmt : A.stmt) =
  let loc = stmt.A.sloc in
  let sid = stmt.A.sid in
  let probe () = emit c (B.Iprobe sid) loc in
  match stmt.A.s with
  | A.Sempty -> ()
  | A.Sexpr e ->
    probe ();
    compile_drop c e
  | A.Sdecl [] -> probe ()
  | A.Sdecl ds -> compile_decls c ds ~sid:(Some sid)
  | A.Sblock stmts -> compile_block c senv stmts
  | A.Sif { cond; then_; else_ } -> (
      probe ();
      let lt = ref (-1) and lf = ref (-1) in
      compile_decision c cond lt lf;
      bind c lt;
      match else_ with
      | None ->
        compile_stmt c senv then_;
        bind c lf
      | Some e ->
        let lend = ref (-1) in
        compile_stmt c senv then_;
        emit c (B.Ijump lend) loc;
        bind c lf;
        compile_stmt c senv e;
        bind c lend)
  | A.Swhile (cond, body) ->
    probe ();
    let lbody = ref (-1) and lcond = ref (-1) and lend = ref (-1) in
    emit c (B.Ijump lcond) loc;
    bind c lbody;
    compile_stmt c
      { senv with brk = Some (lend, senv.hdepth); cont = Some (lcond, senv.hdepth) }
      body;
    bind c lcond;
    (* loop rotation: the decision's true-branch is the back-jump *)
    compile_decision c cond lbody lend;
    bind c lend
  | A.Sdo_while (body, cond) ->
    probe ();
    let lbody = ref (-1) and lcond = ref (-1) and lend = ref (-1) in
    bind c lbody;
    compile_stmt c
      { senv with brk = Some (lend, senv.hdepth); cont = Some (lcond, senv.hdepth) }
      body;
    bind c lcond;
    compile_decision c cond lbody lend;
    bind c lend
  | A.Sfor { init; cond; update; body } ->
    probe ();
    (match init with
     | A.Fi_decl ds -> compile_decls c ds ~sid:None
     | A.Fi_expr e -> compile_drop c e
     | A.Fi_empty -> ());
    let lbody = ref (-1) and lcont = ref (-1) and lcond = ref (-1) and lend = ref (-1) in
    let senv' =
      { senv with brk = Some (lend, senv.hdepth); cont = Some (lcont, senv.hdepth) }
    in
    (match cond with
     | Some cnd ->
       emit c (B.Ijump lcond) loc;
       bind c lbody;
       compile_stmt c senv' body;
       bind c lcont;
       Option.iter (compile_drop c) update;
       bind c lcond;
       compile_decision c cnd lbody lend
     | None ->
       bind c lbody;
       compile_stmt c senv' body;
       bind c lcont;
       Option.iter (compile_drop c) update;
       emit c (B.Ijump lbody) loc);
    bind c lend
  | A.Sswitch (scrutinee, body) -> compile_switch c senv ~sid ~loc scrutinee body
  | A.Scase _ | A.Sdefault -> ()
  | A.Sbreak -> (
      probe ();
      match senv.brk with
      | Some (target, bdepth) ->
        pop_handlers_to c senv bdepth loc;
        emit c (B.Ijump target) loc
      | None -> emit c (B.Iraise_sig `Break) loc)
  | A.Scontinue -> (
      probe ();
      match senv.cont with
      | Some (target, cdepth) ->
        pop_handlers_to c senv cdepth loc;
        emit c (B.Ijump target) loc
      | None -> emit c (B.Iraise_sig `Continue) loc)
  | A.Sreturn None ->
    emit c (B.Ireturn { value = None; has_value = false; sid = Some sid }) loc
  | A.Sreturn (Some e) -> (
      match operand_of c e with
      | Some _ as value ->
        emit c (B.Ireturn { value; has_value = true; sid = Some sid }) loc
      | None ->
        probe ();
        compile_value c e;
        emit c (B.Ireturn { value = None; has_value = true; sid = None }) loc)
  | A.Sgoto l -> (
      probe ();
      match find_label senv l with
      | Some (target, ldepth) ->
        pop_handlers_to c senv ldepth loc;
        emit c (B.Ijump target) loc
      | None ->
        (* no enclosing block list declares the label: the signal escapes
           the activation, exactly like the tree-walker's unmatched
           [Goto_signal] *)
        emit c (B.Iraise_goto l) loc)
  | A.Slabel (_, inner) -> compile_stmt c senv inner
  | A.Stry { body; catches } -> (
      probe ();
      match catches with
      | [] ->
        (* no handlers: a throw re-raises unchanged, so no frame is pushed *)
        compile_stmt c senv body
      | (_, handler) :: _ ->
        let lh = ref (-1) and lend = ref (-1) in
        emit c (B.Ipush_handler lh) loc;
        compile_stmt c { senv with hdepth = senv.hdepth + 1 } body;
        emit c (B.Ipop_handlers 1) loc;
        emit c (B.Ijump lend) loc;
        bind c lh;
        compile_stmt c senv handler;
        bind c lend)

and compile_block c senv stmts =
  (* top-level labels of this list form one goto scope (first occurrence
     of a duplicated label wins, like the tree-walker's find_label) *)
  let scope =
    List.rev
      (List.fold_left
         (fun acc (s : A.stmt) ->
           match s.A.s with
           | A.Slabel (l, _) when not (List.mem_assoc l acc) ->
             (l, (ref (-1), senv.hdepth)) :: acc
           | _ -> acc)
         [] stmts)
  in
  let senv' = if scope = [] then senv else { senv with labels = scope :: senv.labels } in
  List.iter
    (fun (s : A.stmt) ->
      (match s.A.s with
       | A.Slabel (l, _) -> (
           match List.assoc_opt l scope with
           | Some (r, _) when !r < 0 -> r := c.len
           | _ -> ())
       | _ -> ());
      compile_stmt c senv' s)
    stmts

and compile_decls c ds ~sid =
  List.iteri
    (fun k (d : A.var_decl) -> compile_decl c d ~sid:(if k = 0 then sid else None))
    ds

and compile_decl c (d : A.var_decl) ~sid =
  let slot = slot_or c d.A.v_name in
  let ty = d.A.v_type in
  let loc = d.A.v_loc in
  match d.A.v_init with
  | None -> emit c (B.Ideclare { slot; ty; sid }) loc
  | Some init -> (
      match const_of c.p init with
      | Some cv -> emit c (B.Ideclare_const { slot; ty; cidx = pool_add c.p cv; sid }) loc
      | None ->
        (* the cell is allocated before the initializer runs (the
           initializer sees the previous binding of the name), and the
           slot is bound only afterwards *)
        emit c (B.Ideclare_alloc { ty; sid }) loc;
        compile_value c init;
        emit c (B.Ideclare_init { slot; ty }) loc)

and compile_switch c senv ~sid ~loc scrutinee body =
  emit c (B.Iprobe sid) loc;
  let stmts = match body.A.s with A.Sblock ss -> ss | _ -> [ body ] in
  let lend = ref (-1) in
  (* clause numbering walks cases and default in encounter order *)
  let clause = ref 0 in
  let cases_rev = ref [] in
  let default_ref = ref (-1) in
  let default_info = ref None in
  List.iter
    (fun (s : A.stmt) ->
      match s.A.s with
      | A.Scase ce ->
        cases_rev := (ce, ref (-1), !clause) :: !cases_rev;
        incr clause
      | A.Sdefault ->
        default_info := Some (default_ref, !clause);
        incr clause
      | _ -> ())
    stmts;
  let cases = List.rev !cases_rev in
  let fold_case (ce : A.expr) =
    match const_of c.p ce with
    | Some (((Value.Vint _ | Value.Vfloat _ | Value.Vbool _ | Value.Vnull) as v), _) ->
      Some (Value.as_int v)
    | _ -> None
  in
  let folded = List.map (fun (ce, r, cl) -> (fold_case ce, ce, r, cl)) cases in
  let case_clauses = Array.of_list (List.map (fun (_, _, _, cl) -> cl) folded) in
  compile_value c scrutinee;
  if List.for_all (fun (f, _, _, _) -> f <> None) folded then
    emit c
      (B.Iswitch
         {
           cases =
             Array.of_list (List.map (fun (f, _, r, _) -> (Option.get f, r)) folded);
           case_clauses;
           default = !default_info;
           sid;
           end_ = lend;
         })
      loc
  else begin
    (* dynamic case expressions: the scrutinee is coerced to an integer
       before any case expression runs, as in the tree-walker *)
    emit c B.Ias_int loc;
    List.iter (fun (_, ce, _, _) -> compile_value c ce) folded;
    emit c
      (B.Iswitch_dyn
         {
           ncases = List.length folded;
           targets = Array.of_list (List.map (fun (_, _, r, _) -> r) folded);
           case_clauses;
           default = !default_info;
           sid;
           end_ = lend;
         })
      loc
  end;
  (* the body list is not a goto scope: the tree-walker dispatches into
     it directly without exec_block's label handling *)
  let senv' = { senv with brk = Some (lend, senv.hdepth) } in
  let case_queue = ref (List.map (fun (_, _, r, _) -> r) folded) in
  List.iter
    (fun (s : A.stmt) ->
      (match s.A.s with
       | A.Scase _ -> (
           match !case_queue with
           | r :: rest ->
             r := c.len;
             case_queue := rest
           | [] -> ())
       | A.Sdefault -> default_ref := c.len
       | _ -> ());
      compile_stmt c senv' s)
    stmts;
  bind c lend

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

let compile_fn p (fn : A.func) : B.cfn =
  let names = A.local_names_of_func fn in
  let slots = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace slots n i) names;
  let c = { p; slots; code = [||]; locs = [||]; len = 0 } in
  (match fn.A.f_body with
   | Some body -> compile_stmt c { brk = None; cont = None; labels = []; hdepth = 0 } body
   | None -> ());
  let cfn =
    {
      B.cf_func = fn;
      cf_qname = A.qualified_name fn;
      cf_code = Array.sub c.code 0 c.len;
      cf_locs = Array.sub c.locs 0 c.len;
      cf_n_slots = List.length names;
      cf_slot_names = Array.of_list names;
      cf_param_slots =
        Array.of_list
          (List.map (fun (prm : A.param) -> Hashtbl.find slots prm.A.p_name) fn.A.f_params);
      cf_max_stack = 0;
    }
  in
  { cfn with B.cf_max_stack = B.validate cfn }

let compile_uncached (tus : A.tu list) : B.program =
  (* pass 1: replica symbol tables.  [findex] receives exactly the key
     operations [Interp.load_tu] performs on [env.funcs] (same initial
     capacity, same replace/mem sequence), so Hashtbl.fold visits keys
     in the same order and compile-time suffix resolution picks the
     same function the tree-walker would. *)
  let enums = Hashtbl.create 16 in
  let findex = Hashtbl.create 64 in
  let fns_rev = ref [] in
  let nfns = ref 0 in
  List.iter
    (fun (tu : A.tu) ->
      A.iter_tops
        (fun top ->
          match top with
          | A.Tenum e ->
            let next = ref 0L in
            List.iter
              (fun (name, v) ->
                let v64 = match v with Some i -> Int64.of_int i | None -> !next in
                Hashtbl.replace enums name v64;
                next := Int64.add v64 1L)
              e.A.en_items
          | _ -> ())
        tu.A.tops;
      List.iter
        (fun (fn : A.func) ->
          if fn.A.f_body <> None then begin
            let fidx = !nfns in
            fns_rev := fn :: !fns_rev;
            incr nfns;
            Hashtbl.replace findex (A.qualified_name fn) fidx;
            if not (Hashtbl.mem findex fn.A.f_name) then
              Hashtbl.replace findex fn.A.f_name fidx
          end)
        (A.functions_of_tu tu))
    tus;
  let fns = Array.of_list (List.rev !fns_rev) in
  let p =
    { enums; findex; fns; pool_rev = []; pool_len = 0; pool_tbl = Hashtbl.create 64 }
  in
  (* pass 2: compile every body against the complete tables *)
  let cfns = Array.map (compile_fn p) fns in
  {
    B.p_tus = tus;
    p_fns = cfns;
    p_pool = Array.of_list (List.rev p.pool_rev);
    p_index = findex;
  }

(* Cached entry point.  The key hashes the marshaled tu list, which
   embeds every eid/sid operand the probe instructions will carry — so
   an artifact recorded under one id trajectory can only hit when the
   current parse reproduces those exact bytes, making the artifact
   self-validating (a mismatched trajectory is a miss and a recompile,
   never a wrong program).  No owner: the key alone decides validity. *)
let compile (tus : A.tu list) : B.program =
  match Cache.global () with
  | None -> compile_uncached tus
  | Some c ->
    let key =
      Cache.key ~kind:"bytecode" [ Cache.fnv1a64 (Marshal.to_string tus []) ]
    in
    Cache.memo c ~kind:"bytecode" ~key (fun () -> compile_uncached tus)
