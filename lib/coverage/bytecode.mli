(** Flat bytecode for the coverage interpreter.

    {!Compile} lowers the shared Cfront AST to this instruction set once
    per parse; {!Exec} runs it with a tight dispatch loop against the
    same {!Interp.env} the tree-walker uses.  Design constraints, in
    order:

    - {b Oracle equivalence.}  Every hook event ([on_stmt],
      [on_decision] with the full MC/DC condition vector, [on_switch],
      [on_call], [on_kernel_launch], [on_function_stmt]), every memory
      effect, every printed byte and every error message must be
      byte-identical to the tree-walker on the same input.  Coverage
      probes are explicit instructions ({!Iprobe}, {!Idecide},
      {!Idec_report}, the switch dispatchers) so the {!Collector} and
      {!Mcdc} layers are fed unchanged.
    - {b Fewer ticks.}  The dispatch loop calls {!Interp.tick} exactly
      once per instruction, so [env.steps] doubles as the dispatch
      counter.  The tree-walker ticks once per visited AST node;
      structural statements compile to zero instructions, constants fold
      into one push, and the fused forms ({!Ibinop2}, {!Iindex} and
      {!Imember} with operand bases, {!Iassign_local},
      {!Ideclare_const}, operand-carrying {!Idecide}/{!Ireturn}) replace
      multi-node tree walks with single instructions.  The [compile]
      bench and the differential harness both assert the bytecode engine
      executes the scenario set in strictly fewer ticks.
    - {b Immutability.}  Jump targets are [int ref] purely so the
      one-pass compiler can backpatch; after compilation a program is
      never written and is shared read-only across worker domains.

    Value-stack entries are [(Value.t * ctype)] pairs; lvalue
    instructions push an {e address pair} (pointer + cell type) that
    only address-consuming instructions ({!Ilv_load}, {!Iassign},
    {!Iaddr_of}, {!Iincdec}, {!Imember} with [base = None], …) inspect.
    The stack discipline is static: {!validate} proves jump-target
    bounds and a single consistent stack depth per pc for every
    compiled function (the QCheck well-formedness property in
    [test/test_bytecode_diff.ml] runs it over the whole corpus). *)

type operand =
  | Oslot of int * string * Cfront.Loc.t
      (** local slot, source name (for the global fallback) and use
          location (for error messages) *)
  | Oconst of int  (** constant-pool index *)

type instr =
  | Iconst of int
  | Ilocal of { slot : int; name : string; loc : Cfront.Loc.t }
  | Iglobal of { name : string; loc : Cfront.Loc.t }
  | Icuda_dim of string
  | Ilv_local of { slot : int; name : string; loc : Cfront.Loc.t }
  | Ilv_global of { name : string; loc : Cfront.Loc.t }
  | Ilv_deref of Cfront.Loc.t
  | Iindex of {
      base : operand option;
      idx : operand option;
      want_load : bool;
      loc : Cfront.Loc.t;
    }
  | Imember of {
      arrow : bool;
      base : operand option;
      field : string;
      want_load : bool;
      loc : Cfront.Loc.t;
    }
  | Ilv_cast of Cfront.Ast.ctype
  | Ilv_load
  | Ideref_load of Cfront.Loc.t
  | Iaddr_of
  | Iaddr_local of { slot : int; name : string; loc : Cfront.Loc.t }
  | Iunop of { op : Cfront.Ast.unop; loc : Cfront.Loc.t }
  | Iincdec of { pre : bool; delta : int; drop : bool }
  | Iincdec_local of {
      slot : int;
      name : string;
      pre : bool;
      delta : int;
      drop : bool;
      loc : Cfront.Loc.t;
    }
  | Ibinop of { op : Cfront.Ast.binop; rhs : operand option; loc : Cfront.Loc.t }
  | Ibinop2 of { op : Cfront.Ast.binop; lhs : operand; rhs : operand; loc : Cfront.Loc.t }
  | Iassign of { op : Cfront.Ast.assign_op; drop : bool; loc : Cfront.Loc.t }
  | Iassign_local of {
      op : Cfront.Ast.assign_op;
      slot : int;
      name : string;
      drop : bool;
      loc : Cfront.Loc.t;  (** assign node: compound-op arithmetic errors *)
      id_loc : Cfront.Loc.t;  (** lhs identifier: unbound-name errors *)
    }
  | Ipop
  | Icast of Cfront.Ast.ctype
  | Isizeof_type of Cfront.Ast.ctype
  | Isizeof_expr
  | Inew of { ty : Cfront.Ast.ctype; has_size : bool }
  | Idelete of { drop : bool; loc : Cfront.Loc.t }
  | Ithrow of { has_value : bool }
  | Ias_int
  | Ijump of int ref
  | Ibranch of { value : operand option; jt : int ref; jf : int ref }
  | Idecide of {
      deid : int;
      leid : int;
      negate : bool;
      value : operand option;
      jt : int ref;
      jf : int ref;
    }
  | Idec_begin of int
  | Ileaf of { idx : int; value : operand option; jt : int ref; jf : int ref }
  | Idec_report of { deid : int; leids : int array; outcome : bool; next : int ref }
  | Iprobe of int
  | Ideclare of { slot : int; ty : Cfront.Ast.ctype; sid : int option }
  | Ideclare_const of { slot : int; ty : Cfront.Ast.ctype; cidx : int; sid : int option }
  | Ideclare_alloc of { ty : Cfront.Ast.ctype; sid : int option }
  | Ideclare_init of { slot : int; ty : Cfront.Ast.ctype }
  | Iswitch of {
      cases : (int64 * int ref) array;
      case_clauses : int array;
      default : (int ref * int) option;
      sid : int;
      end_ : int ref;
    }
  | Iswitch_dyn of {
      ncases : int;
      targets : int ref array;
      case_clauses : int array;
      default : (int ref * int) option;
      sid : int;
      end_ : int ref;
    }
  | Icall of { fidx : int; nargs : int; drop : bool }
  | Ibuiltin of { name : string; nargs : int; drop : bool; loc : Cfront.Loc.t }
  | Ikernel_prep of { fidx : int; nargs : int; loc : Cfront.Loc.t }
  | Ikernel_run of { fidx : int; nargs : int }
  | Ipush_handler of int ref
  | Ipop_handlers of int
  | Iraise of { msg : string; loc : Cfront.Loc.t }
  | Iraise_goto of string
  | Iraise_sig of [ `Break | `Continue ]
  | Ireturn of { value : operand option; has_value : bool; sid : int option }

(** One compiled function. *)
type cfn = {
  cf_func : Cfront.Ast.func;  (** source AST (identity ties into [env.funcs]) *)
  cf_qname : string;
  cf_code : instr array;
  cf_locs : Cfront.Loc.t array;
  cf_n_slots : int;
  cf_slot_names : string array;
  cf_param_slots : int array;
  cf_max_stack : int;
}

(** A compiled program: every function with a body from the shared
    parse, plus the constant pool and the name-resolution table (an
    exact replica of how {!Interp.load_tu} populates [env.funcs]). *)
type program = {
  p_tus : Cfront.Ast.tu list;
  p_fns : cfn array;
  p_pool : (Value.t * Cfront.Ast.ctype) array;
  p_index : (string, int) Hashtbl.t;
}

exception Invalid of string

(** Mnemonic for an instruction (diagnostics and tests). *)
val opname : instr -> string

(** [validate_code code] checks every jump target is in range and the
    value-stack depth is consistent at every pc (and 0 at fall-off);
    returns the maximum stack depth.  Raises {!Invalid} otherwise. *)
val validate_code : instr array -> int

(** Validate one compiled function; returns its max stack depth. *)
val validate : cfn -> int
