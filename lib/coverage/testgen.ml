(** Gap-driven test generation — closing Observation 10's loop.

    The paper concludes that "additional test cases are required to reach
    much higher coverage (preferably 100%)".  This module generates those
    test cases automatically for a tractable, common class of gaps:

    - {b uncalled functions} whose parameters are all scalars: call them
      with a small boundary-value battery;
    - {b uncovered switch clauses} whose scrutinee is (an arithmetic
      function of) a parameter and whose case labels are integer
      constants: call the enclosing function once per missing label value;
    - {b one-sided decisions} that compare a parameter against an integer
      constant: call with values on both sides of the constant.

    The synthesized driver is C source; running it through the same
    interpreter measurably raises statement/branch coverage, which the
    harness reports as before/after. *)

type call_plan = {
  target : string;  (** simple function name to call *)
  args : int list list;  (** one list of int arguments per synthesized call *)
  reason : string;
}

let boundary_values = [ -1; 0; 1; 2; 7 ]

(* Scalar parameter battery for a function: the same boundary value in
   every position, one call per boundary value. *)
let battery (fn : Cfront.Ast.func) ~reason =
  let n = List.length fn.Cfront.Ast.f_params in
  {
    target = fn.Cfront.Ast.f_name;
    args = List.map (fun v -> List.init n (fun _ -> v)) boundary_values;
    reason;
  }

let all_scalar_params (fn : Cfront.Ast.func) =
  fn.Cfront.Ast.f_params <> []
  && List.for_all
       (fun (p : Cfront.Ast.param) ->
         match p.Cfront.Ast.p_type with
         | Cfront.Ast.Tint _ | Cfront.Ast.Tfloat | Cfront.Ast.Tdouble
         | Cfront.Ast.Tbool | Cfront.Ast.Tchar -> true
         | _ -> false)
       fn.Cfront.Ast.f_params

(* Does [e] mention parameter [p] and only constants otherwise? *)
let rec param_driven params (e : Cfront.Ast.expr) =
  match e.Cfront.Ast.e with
  | Cfront.Ast.Id n -> if List.mem n params then Some n else None
  | Cfront.Ast.Binary (_, a, b) -> (
      match (param_driven params a, param_driven params b) with
      | Some n, None | None, Some n -> Some n
      | _ -> None)
  | Cfront.Ast.Unary (_, a) | Cfront.Ast.C_cast (_, a) -> param_driven params a
  | _ -> None

(* Case labels of switches on parameters, plus decision constants compared
   to parameters. *)
let interesting_values (fn : Cfront.Ast.func) =
  match fn.Cfront.Ast.f_body with
  | None -> []
  | Some body ->
    let params = List.map (fun p -> p.Cfront.Ast.p_name) fn.Cfront.Ast.f_params in
    let acc = ref [] in
    Cfront.Ast.iter_stmts
      (fun s ->
        match s.Cfront.Ast.s with
        | Cfront.Ast.Sswitch (scrutinee, sw_body)
          when param_driven params scrutinee <> None ->
          Cfront.Ast.iter_stmts
            (fun t ->
              match t.Cfront.Ast.s with
              | Cfront.Ast.Scase { e = Cfront.Ast.Int_const v; _ } ->
                acc := Int64.to_int v :: !acc
              | _ -> ())
            sw_body;
          (* one value outside every label for the default clause *)
          acc := 99 :: !acc
        | _ -> ())
      body;
    Cfront.Ast.iter_exprs_of_func
      (fun e ->
        match e.Cfront.Ast.e with
        | Cfront.Ast.Binary ((Cfront.Ast.Lt | Cfront.Ast.Le | Cfront.Ast.Gt
                             | Cfront.Ast.Ge | Cfront.Ast.Eq | Cfront.Ast.Ne),
                             a, { e = Cfront.Ast.Int_const v; _ })
          when param_driven params a <> None ->
          let v = Int64.to_int v in
          acc := (v - 1) :: v :: (v + 1) :: !acc
        | _ -> ())
      fn;
    List.sort_uniq compare !acc

(** Build call plans for the coverage gaps of [tus] under [collector]. *)
let plan_for_gaps (collector : Collector.t) (tus : Cfront.Ast.tu list) ~measured =
  let plans = ref [] in
  List.iter
    (fun (tu : Cfront.Ast.tu) ->
      if List.mem tu.Cfront.Ast.tu_file measured then
        List.iter
          (fun (fn : Cfront.Ast.func) ->
            if fn.Cfront.Ast.f_body <> None && all_scalar_params fn then begin
              let qname = Cfront.Ast.qualified_name fn in
              let called = Collector.function_called collector qname in
              let values = interesting_values fn in
              if not called then
                plans := battery fn ~reason:"function never called" :: !plans
              else if values <> [] then begin
                (* values in the first parameter, defaults elsewhere *)
                let n = List.length fn.Cfront.Ast.f_params in
                plans :=
                  {
                    target = fn.Cfront.Ast.f_name;
                    args =
                      List.map
                        (fun v -> v :: List.init (n - 1) (fun _ -> 1))
                        values;
                    reason = "uncovered clauses reachable via parameter values";
                  }
                  :: !plans
              end
            end)
          (Cfront.Ast.functions_of_tu tu))
    tus;
  List.rev !plans

(** Render the call plans as a C driver: one [gap_case_N] function per
    synthesized call so that a fault in one probe (boundary values do hit
    unchecked error paths) does not mask the coverage from the others.
    Returns the source and the entry names. *)
let driver_of_plans plans =
  let buf = Buffer.create 1024 in
  let entries = ref [] in
  Buffer.add_string buf "// synthesized by Coverage.Testgen to close coverage gaps\n";
  let case = ref 0 in
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "// %s: %s\n" p.target p.reason);
      List.iter
        (fun args ->
          let name = Printf.sprintf "gap_case_%d" !case in
          incr case;
          entries := name :: !entries;
          Buffer.add_string buf
            (Printf.sprintf "int %s() {\n  return (int)%s(%s);\n}\n" name p.target
               (String.concat ", " (List.map string_of_int args))))
        p.args)
    plans;
  (Buffer.contents buf, List.rev !entries)

type improvement = {
  before_stmt : float;
  before_branch : float;
  after_stmt : float;
  after_branch : float;
  plans : call_plan list;
  driver : string;
}

(** Measure, synthesize, re-measure.  [entry] is the original test entry
    point; the synthesized calls run afterwards in the same collector. *)
let close_gaps ~entry ~measured (tus : Cfront.Ast.tu list) =
  let score collector =
    let files =
      List.filter_map
        (fun (tu : Cfront.Ast.tu) ->
          if List.mem tu.Cfront.Ast.tu_file measured then
            Some
              (Collector.score_file collector ~file:tu.Cfront.Ast.tu_file
                 (Instrument.of_tu tu))
          else None)
        tus
    in
    let stmt, branch, _ = Collector.averages files in
    (stmt, branch)
  in
  (* pass 1: the original tests *)
  let c1 = Collector.create () in
  let env1 = Interp.create ~hooks:(Collector.hooks c1) () in
  (match Interp.run env1 tus ~entry ~args:[] with
   | Ok _ -> ()
   | Error e -> failwith ("baseline run failed: " ^ e));
  let before_stmt, before_branch = score c1 in
  let plans = plan_for_gaps c1 tus ~measured in
  let driver, entries = driver_of_plans plans in
  (* pass 2: original tests + synthesized probes, fresh collector *)
  let gap_tu = Cfront.Parser.parse_file ~file:"testgen/gap_driver.c" driver in
  let c2 = Collector.create () in
  let env2 = Interp.create ~hooks:(Collector.hooks c2) () in
  let tus2 = tus @ [ gap_tu ] in
  (match Interp.run env2 tus2 ~entry ~args:[] with
   | Ok _ -> ()
   | Error e -> failwith ("baseline rerun failed: " ^ e));
  (* each probe runs in isolation: a probe may legitimately fault while
     exercising an unchecked error path, and coverage reached before the
     fault still counts *)
  ignore (Interp.run_entries env2 ~entries);
  let after_stmt, after_branch = score c2 in
  { before_stmt; before_branch; after_stmt; after_branch; plans; driver }
