(** Flat bytecode for the coverage interpreter.  See bytecode.mli.

    Jump targets are [int ref]s so the one-pass compiler can emit a
    forward reference and patch it when the target's offset is known.
    After {!Compile.compile} returns, no target is ever written again —
    a program is immutable and safe to share across worker domains. *)

type operand =
  | Oslot of int * string * Cfront.Loc.t
      (** a local slot with its source name (for the global/unbound
          fallback) and the identifier's location (for error messages) *)
  | Oconst of int  (** constant-pool index *)

type instr =
  (* --- pushes ------------------------------------------------------ *)
  | Iconst of int
  | Ilocal of { slot : int; name : string; loc : Cfront.Loc.t }
  | Iglobal of { name : string; loc : Cfront.Loc.t }
  | Icuda_dim of string
  (* --- lvalues (push an address pair: pointer + cell type) --------- *)
  | Ilv_local of { slot : int; name : string; loc : Cfront.Loc.t }
  | Ilv_global of { name : string; loc : Cfront.Loc.t }
  | Ilv_deref of Cfront.Loc.t
  | Iindex of {
      base : operand option;
      idx : operand option;
      want_load : bool;
      loc : Cfront.Loc.t;  (** location of the base expression *)
    }
  | Imember of {
      arrow : bool;
      base : operand option;
          (** fused base: [Oslot] resolves with lvalue rules when
              [arrow = false] and rvalue rules when [arrow = true] *)
      field : string;
      want_load : bool;
      loc : Cfront.Loc.t;
    }
  | Ilv_cast of Cfront.Ast.ctype
  | Ilv_load
  | Ideref_load of Cfront.Loc.t
  | Iaddr_of
  | Iaddr_local of { slot : int; name : string; loc : Cfront.Loc.t }
  (* --- operators ---------------------------------------------------- *)
  | Iunop of { op : Cfront.Ast.unop; loc : Cfront.Loc.t }
  | Iincdec of { pre : bool; delta : int; drop : bool }
  | Iincdec_local of {
      slot : int;
      name : string;
      pre : bool;
      delta : int;
      drop : bool;
      loc : Cfront.Loc.t;
    }
  | Ibinop of { op : Cfront.Ast.binop; rhs : operand option; loc : Cfront.Loc.t }
  | Ibinop2 of { op : Cfront.Ast.binop; lhs : operand; rhs : operand; loc : Cfront.Loc.t }
  | Iassign of { op : Cfront.Ast.assign_op; drop : bool; loc : Cfront.Loc.t }
  | Iassign_local of {
      op : Cfront.Ast.assign_op;
      slot : int;
      name : string;
      drop : bool;
      loc : Cfront.Loc.t;  (** assign node: compound-op arithmetic errors *)
      id_loc : Cfront.Loc.t;  (** lhs identifier: unbound-name errors *)
    }
  | Ipop
  | Icast of Cfront.Ast.ctype
  | Isizeof_type of Cfront.Ast.ctype
  | Isizeof_expr
  | Inew of { ty : Cfront.Ast.ctype; has_size : bool }
  | Idelete of { drop : bool; loc : Cfront.Loc.t }
  | Ithrow of { has_value : bool }
  | Ias_int
  (* --- control flow ------------------------------------------------- *)
  | Ijump of int ref
  | Ibranch of { value : operand option; jt : int ref; jf : int ref }
      (** truthy branch without decision recording (bare [&&]/[||] in
          value position) *)
  | Idecide of {
      deid : int;  (** decision eid reported to [on_decision] *)
      leid : int;  (** the single leaf's eid *)
      negate : bool;  (** odd number of [!] wrappers around the leaf *)
      value : operand option;  (** fused leaf value; [None] pops *)
      jt : int ref;
      jf : int ref;
    }
  | Idec_begin of int  (** push an n-leaf decision record *)
  | Ileaf of { idx : int; value : operand option; jt : int ref; jf : int ref }
  | Idec_report of { deid : int; leids : int array; outcome : bool; next : int ref }
  (* --- statements --------------------------------------------------- *)
  | Iprobe of int  (** statement sid: on_stmt + on_function_stmt *)
  | Ideclare of { slot : int; ty : Cfront.Ast.ctype; sid : int option }
  | Ideclare_const of { slot : int; ty : Cfront.Ast.ctype; cidx : int; sid : int option }
  | Ideclare_alloc of { ty : Cfront.Ast.ctype; sid : int option }
  | Ideclare_init of { slot : int; ty : Cfront.Ast.ctype }
  | Iswitch of {
      cases : (int64 * int ref) array;  (** in clause order *)
      case_clauses : int array;
      default : (int ref * int) option;  (** target, clause index *)
      sid : int;
      end_ : int ref;
    }
  | Iswitch_dyn of {
      ncases : int;
      targets : int ref array;
      case_clauses : int array;
      default : (int ref * int) option;
      sid : int;
      end_ : int ref;
    }
  (* --- calls --------------------------------------------------------- *)
  | Icall of { fidx : int; nargs : int; drop : bool }
  | Ibuiltin of { name : string; nargs : int; drop : bool; loc : Cfront.Loc.t }
  | Ikernel_prep of { fidx : int; nargs : int; loc : Cfront.Loc.t }
  | Ikernel_run of { fidx : int; nargs : int }
  (* --- exceptions ---------------------------------------------------- *)
  | Ipush_handler of int ref
  | Ipop_handlers of int
  | Iraise of { msg : string; loc : Cfront.Loc.t }
  | Iraise_goto of string
  | Iraise_sig of [ `Break | `Continue ]
  | Ireturn of { value : operand option; has_value : bool; sid : int option }

type cfn = {
  cf_func : Cfront.Ast.func;
  cf_qname : string;
  cf_code : instr array;
  cf_locs : Cfront.Loc.t array;  (** per-instruction location, for [tick] *)
  cf_n_slots : int;
  cf_slot_names : string array;
  cf_param_slots : int array;  (** slot of each parameter, in order *)
  cf_max_stack : int;
}

type program = {
  p_tus : Cfront.Ast.tu list;
  p_fns : cfn array;
  p_pool : (Value.t * Cfront.Ast.ctype) array;
  p_index : (string, int) Hashtbl.t;
      (** replica of [Interp.env.funcs] built with the identical
          insertion sequence, mapping both qualified and simple names *)
}

exception Invalid of string

(* ------------------------------------------------------------------ *)
(* Static well-formedness: jump targets in range, consistent stack     *)
(* depth at every pc, empty stack at function exit.                    *)
(* ------------------------------------------------------------------ *)

let opname = function
  | Iconst _ -> "const" | Ilocal _ -> "local" | Iglobal _ -> "global"
  | Icuda_dim _ -> "cuda_dim" | Ilv_local _ -> "lv_local"
  | Ilv_global _ -> "lv_global" | Ilv_deref _ -> "lv_deref"
  | Iindex _ -> "index" | Imember _ -> "member" | Ilv_cast _ -> "lv_cast"
  | Ilv_load -> "lv_load" | Ideref_load _ -> "deref_load"
  | Iaddr_of -> "addr_of" | Iaddr_local _ -> "addr_local" | Iunop _ -> "unop"
  | Iincdec _ -> "incdec" | Iincdec_local _ -> "incdec_local"
  | Ibinop _ -> "binop" | Ibinop2 _ -> "binop2" | Iassign _ -> "assign"
  | Iassign_local _ -> "assign_local" | Ipop -> "pop" | Icast _ -> "cast"
  | Isizeof_type _ -> "sizeof_type" | Isizeof_expr -> "sizeof_expr"
  | Inew _ -> "new" | Idelete _ -> "delete" | Ithrow _ -> "throw"
  | Ias_int -> "as_int"
  | Ijump _ -> "jump" | Ibranch _ -> "branch" | Idecide _ -> "decide"
  | Idec_begin _ -> "dec_begin" | Ileaf _ -> "leaf"
  | Idec_report _ -> "dec_report" | Iprobe _ -> "probe"
  | Ideclare _ -> "declare" | Ideclare_const _ -> "declare_const"
  | Ideclare_alloc _ -> "declare_alloc" | Ideclare_init _ -> "declare_init"
  | Iswitch _ -> "switch" | Iswitch_dyn _ -> "switch_dyn"
  | Icall _ -> "call" | Ibuiltin _ -> "builtin"
  | Ikernel_prep _ -> "kernel_prep" | Ikernel_run _ -> "kernel_run"
  | Ipush_handler _ -> "push_handler" | Ipop_handlers _ -> "pop_handlers"
  | Iraise _ -> "raise" | Iraise_goto _ -> "raise_goto"
  | Iraise_sig _ -> "raise_sig" | Ireturn _ -> "return"

let operand_pops = function Some _ -> 0 | None -> 1

(* (pops, pushes, successors).  Successors: [`Next] fall-through plus
   explicit targets; terminators have no successors. *)
let effect instr =
  let n = [ `Next ] in
  match instr with
  | Iconst _ | Ilocal _ | Iglobal _ | Icuda_dim _ | Ilv_local _ | Ilv_global _ ->
    (0, 1, n)
  | Ilv_deref _ | Ilv_cast _ | Ilv_load | Ideref_load _ | Iaddr_of | Iunop _
  | Icast _ | Isizeof_expr | Ias_int ->
    (1, 1, n)
  | Iaddr_local _ -> (0, 1, n)
  | Iindex { base; idx; _ } -> (operand_pops base + operand_pops idx, 1, n)
  | Imember { base; _ } -> (operand_pops base, 1, n)
  | Iincdec { drop; _ } -> (1, (if drop then 0 else 1), n)
  | Iincdec_local { drop; _ } -> (0, (if drop then 0 else 1), n)
  | Ibinop { rhs; _ } -> (1 + operand_pops rhs, 1, n)
  | Ibinop2 _ -> (0, 1, n)
  | Iassign { drop; _ } -> (2, (if drop then 0 else 1), n)
  | Iassign_local { drop; _ } -> (1, (if drop then 0 else 1), n)
  | Ipop -> (1, 0, n)
  | Isizeof_type _ -> (0, 1, n)
  | Inew { has_size; _ } -> ((if has_size then 1 else 0), 1, n)
  | Idelete { drop; _ } -> (1, (if drop then 0 else 1), n)
  | Ithrow { has_value } -> ((if has_value then 1 else 0), 0, [])
  | Ijump t -> (0, 0, [ `To t ])
  | Ibranch { value; jt; jf } -> (operand_pops value, 0, [ `To jt; `To jf ])
  | Idecide { value; jt; jf; _ } -> (operand_pops value, 0, [ `To jt; `To jf ])
  | Idec_begin _ -> (0, 0, n)
  | Ileaf { value; jt; jf; _ } -> (operand_pops value, 0, [ `To jt; `To jf ])
  | Idec_report { next; _ } -> (0, 0, [ `To next ])
  | Iprobe _ -> (0, 0, n)
  | Ideclare _ | Ideclare_const _ -> (0, 0, n)
  | Ideclare_alloc _ -> (0, 1, n)
  | Ideclare_init _ -> (2, 0, n)
  | Iswitch { cases; default; end_; _ } ->
    let succ =
      `To end_
      :: (Array.to_list cases |> List.map (fun (_, t) -> `To t))
      @ (match default with Some (t, _) -> [ `To t ] | None -> [])
    in
    (1, 0, succ)
  | Iswitch_dyn { ncases; targets; default; end_; _ } ->
    let succ =
      (`To end_ :: (Array.to_list targets |> List.map (fun t -> `To t)))
      @ (match default with Some (t, _) -> [ `To t ] | None -> [])
    in
    (ncases + 1, 0, succ)
  | Icall { nargs; drop; _ } | Ibuiltin { nargs; drop; _ } ->
    (nargs, (if drop then 0 else 1), n)
  | Ikernel_prep _ -> (0, 0, n)  (* validates grid/block in place *)
  | Ikernel_run { nargs; _ } -> (nargs + 2, 0, n)
  | Ipush_handler t -> (0, 0, [ `Next; `To t ])
  | Ipop_handlers _ -> (0, 0, n)
  | Iraise _ | Iraise_goto _ | Iraise_sig _ -> (0, 0, [])
  | Ireturn { value; has_value; _ } ->
    ((if has_value && value = None then 1 else 0), 0, [])

(** Check jump-target bounds and stack-depth consistency; returns the
    maximum value-stack depth.  Raises {!Invalid} on malformed code.
    Depth at the implicit fall-off return (pc = length) must be 0. *)
let validate_code (code : instr array) =
  let len = Array.length code in
  let depth = Array.make (len + 1) (-1) in
  let max_depth = ref 0 in
  let work = Queue.create () in
  let visit pc d =
    if pc < 0 || pc > len then
      raise (Invalid (Printf.sprintf "jump target %d out of range [0,%d]" pc len));
    if d < 0 then raise (Invalid (Printf.sprintf "stack underflow reaching pc %d" pc));
    if depth.(pc) = -1 then begin
      depth.(pc) <- d;
      if d > !max_depth then max_depth := d;
      if pc < len then Queue.add pc work
    end
    else if depth.(pc) <> d then
      raise
        (Invalid
           (Printf.sprintf "inconsistent stack depth at pc %d: %d vs %d" pc depth.(pc) d))
  in
  if len > 0 then visit 0 0;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let instr = code.(pc) in
    let pops, pushes, succ = effect instr in
    let d = depth.(pc) - pops in
    if d < 0 then
      raise
        (Invalid
           (Printf.sprintf "stack underflow at pc %d (%s): depth %d, pops %d" pc
              (opname instr) depth.(pc) pops));
    let d' = d + pushes in
    List.iter
      (fun s ->
        match s with
        | `Next ->
          (* a handler target is entered with an empty value stack (the
             runtime truncates to the push-time depth, which for a
             statement-position try is the recorded depth) *)
          visit (pc + 1) d'
        | `To t -> (
            match instr with
            | Ipush_handler _ when !t <> pc + 1 -> visit !t depth.(pc)
            | _ -> visit !t d'))
      succ
  done;
  if depth.(len) > 0 then
    raise (Invalid (Printf.sprintf "non-empty stack (%d) at function exit" depth.(len)));
  !max_depth

let validate (cfn : cfn) =
  if Array.length cfn.cf_code <> Array.length cfn.cf_locs then
    raise (Invalid "code/locs length mismatch");
  validate_code cfn.cf_code
