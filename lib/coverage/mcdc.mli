(** Modified Condition/Decision Coverage bookkeeping.

    For each decision the collector retains the deduplicated set of
    observed test vectors: each leaf condition's truth value ([None] when
    short-circuit skipped it) plus the decision outcome.  A condition is
    covered when an independence pair exists under the chosen pairing
    {!mode}. *)

type vector = { conds : (int * bool option) list; outcome : bool }

type decision_log = { mutable vectors : vector list }

type t = { logs : (int, decision_log) Hashtbl.t }

val create : unit -> t

val record :
  t -> decision_eid:int -> conds:(int * bool option) list -> outcome:bool -> unit

(** Set-union merge of [src]'s vectors into [into].  Union is commutative
    and associative on the deduplicated vector sets, so merging
    per-scenario logs in any partition or order yields the same set; all
    scoring is order-blind (existential over the set). *)
val merge_into : into:t -> t -> unit

(** Canonical state view: decisions sorted by eid, vector sets sorted
    structurally.  Two logs are observationally identical iff their
    canonical views are equal — the merge property tests compare these. *)
val canonical : t -> (int * vector list) list

(** Pairing discipline:
    [`Masking] — a short-circuit-masked condition agrees with anything
    (the practical discipline for C's lazy operators);
    [`Strict] — strict unique-cause: every other condition must carry the
    identical recorded value, including maskedness. *)
type mode = [ `Masking | `Strict ]

val condition_covered : ?mode:mode -> decision_log -> int -> bool

(** For an uncovered condition, a starting point for the missing test:
    [(value to force the condition to, an observed base vector to
    replicate)].  [None] when the decision never executed. *)
val suggest_vector :
  t -> decision_eid:int -> cond_id:int -> (bool * vector) option

(** [(covered, total)] conditions for one decision. *)
val decision_score :
  ?mode:mode -> t -> decision_eid:int -> conditions:int list -> int * int
