(** Runtime coverage collector: aggregates the interpreter's hook events
    and joins them with the static {!Instrument} points into per-function
    and per-file reports. *)

type t = {
  stmt_hits : (int, int) Hashtbl.t;
  decision_outcomes : (int * bool, int) Hashtbl.t;  (** (decision eid, outcome) *)
  switch_hits : (int * int, int) Hashtbl.t;  (** (switch sid, clause idx) *)
  calls : (string, int) Hashtbl.t;
  kernel_launches : (string, int) Hashtbl.t;
  mcdc : Mcdc.t;
}

let create () =
  {
    stmt_hits = Hashtbl.create 1024;
    decision_outcomes = Hashtbl.create 256;
    switch_hits = Hashtbl.create 64;
    calls = Hashtbl.create 64;
    kernel_launches = Hashtbl.create 16;
    mcdc = Mcdc.create ();
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let hooks t : Interp.hooks =
  {
    Interp.on_stmt = (fun sid -> bump t.stmt_hits sid);
    on_decision =
      (fun eid conds outcome ->
        bump t.decision_outcomes (eid, outcome);
        Mcdc.record t.mcdc ~decision_eid:eid ~conds ~outcome);
    on_switch = (fun sid clause -> bump t.switch_hits (sid, clause));
    on_call = (fun name -> bump t.calls name);
    on_kernel_launch = (fun name ~grid:_ ~block:_ -> bump t.kernel_launches name);
    on_function_stmt = (fun _ -> ());
  }

let function_called t name = Hashtbl.mem t.calls name

(* ------------------------------------------------------------------ *)
(* Merging                                                              *)
(* ------------------------------------------------------------------ *)

(* Per-key sum of hit counts.  Addition is commutative and associative,
   and every score below is a *membership* test on the key set (a key is
   present iff its count is > 0, counts never go negative), so merged
   coverage is exact at any partition of the scenario set — not an
   approximation.  See DESIGN.md "Scenario-parallel coverage". *)
let merge_counts dst src =
  Hashtbl.iter
    (fun k n -> Hashtbl.replace dst k (n + Option.value ~default:0 (Hashtbl.find_opt dst k)))
    src

let merge_into ~into src =
  merge_counts into.stmt_hits src.stmt_hits;
  merge_counts into.decision_outcomes src.decision_outcomes;
  merge_counts into.switch_hits src.switch_hits;
  merge_counts into.calls src.calls;
  merge_counts into.kernel_launches src.kernel_launches;
  Mcdc.merge_into ~into:into.mcdc src.mcdc

let merge ts =
  let acc = create () in
  List.iter (fun t -> merge_into ~into:acc t) ts;
  acc

(* Deterministic rendering of the full collector state, canonically
   ordered: equal fingerprints iff the collectors are observationally
   identical.  The differential suite compares these across jobs values;
   the property tests across random partitions and merge orders. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let sorted_list fold tbl = List.sort compare (fold (fun k v acc -> (k, v) :: acc) tbl []) in
  let section name rows render =
    Buffer.add_string buf name;
    Buffer.add_char buf ':';
    List.iter
      (fun kv ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (render kv))
      rows;
    Buffer.add_char buf '\n'
  in
  section "stmt" (sorted_list Hashtbl.fold t.stmt_hits)
    (fun (sid, n) -> Printf.sprintf "%d=%d" sid n);
  section "decision" (sorted_list Hashtbl.fold t.decision_outcomes)
    (fun ((eid, o), n) -> Printf.sprintf "%d/%b=%d" eid o n);
  section "switch" (sorted_list Hashtbl.fold t.switch_hits)
    (fun ((sid, c), n) -> Printf.sprintf "%d/%d=%d" sid c n);
  section "call" (sorted_list Hashtbl.fold t.calls)
    (fun (f, n) -> Printf.sprintf "%s=%d" f n);
  section "kernel" (sorted_list Hashtbl.fold t.kernel_launches)
    (fun (f, n) -> Printf.sprintf "%s=%d" f n);
  section "mcdc" (Mcdc.canonical t.mcdc)
    (fun (eid, vectors) ->
      Printf.sprintf "%d=[%s]" eid
        (String.concat ";"
           (List.map
              (fun (v : Mcdc.vector) ->
                Printf.sprintf "%s->%b"
                  (String.concat ","
                     (List.map
                        (fun (cid, b) ->
                          Printf.sprintf "%d:%s" cid
                            (match b with
                             | None -> "_"
                             | Some true -> "t"
                             | Some false -> "f"))
                        v.Mcdc.conds))
                  v.Mcdc.outcome)
              vectors)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)
(* ------------------------------------------------------------------ *)

type func_coverage = {
  fp : Instrument.func_points;
  called : bool;
  stmts_hit : int;
  stmts_total : int;
  branches_hit : int;
  branches_total : int;
  conditions_hit : int;
  conditions_total : int;
}

let score_function ?(mcdc_mode = `Masking) t (fp : Instrument.func_points) =
  let stmts_hit =
    List.length (List.filter (fun sid -> Hashtbl.mem t.stmt_hits sid) fp.Instrument.stmts)
  in
  let dec_outcomes =
    Util.Stats.sum_int
      (List.map
         (fun (d : Instrument.decision) ->
           (if Hashtbl.mem t.decision_outcomes (d.Instrument.d_eid, true) then 1 else 0)
           + if Hashtbl.mem t.decision_outcomes (d.Instrument.d_eid, false) then 1 else 0)
         fp.Instrument.decisions)
  in
  let switch_outcomes =
    Util.Stats.sum_int
      (List.map
         (fun (sw : Instrument.switch_point) ->
           let n = ref 0 in
           for c = 0 to sw.Instrument.clauses - 1 do
             if Hashtbl.mem t.switch_hits (sw.Instrument.sw_sid, c) then incr n
           done;
           !n)
         fp.Instrument.switches)
  in
  let cond_scores =
    List.map
      (fun (d : Instrument.decision) ->
        Mcdc.decision_score ~mode:mcdc_mode t.mcdc ~decision_eid:d.Instrument.d_eid
          ~conditions:d.Instrument.conditions)
      fp.Instrument.decisions
  in
  let stmts_total = List.length fp.Instrument.stmts in
  let branches_total =
    (2 * List.length fp.Instrument.decisions)
    + Util.Stats.sum_int
        (List.map (fun sw -> sw.Instrument.clauses) fp.Instrument.switches)
  in
  {
    fp;
    called = function_called t fp.Instrument.fp_name;
    stmts_hit;
    stmts_total;
    branches_hit = dec_outcomes + switch_outcomes;
    branches_total;
    conditions_hit = Util.Stats.sum_int (List.map fst cond_scores);
    conditions_total = Util.Stats.sum_int (List.map snd cond_scores);
  }

type file_coverage = {
  file : string;
  functions : func_coverage list;  (** called functions only *)
  excluded : int;  (** functions never called, excluded as in the paper *)
  stmt_pct : float;
  branch_pct : float;
  mcdc_pct : float;
  function_pct : float;  (** fraction of defined functions entered at all *)
}

let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b

let score_file ?(mcdc_mode = `Masking) t ~file (fps : Instrument.func_points list) =
  let scored = List.map (score_function ~mcdc_mode t) fps in
  let called, not_called = List.partition (fun fc -> fc.called) scored in
  let sum f = Util.Stats.sum_int (List.map f called) in
  {
    file;
    functions = called;
    excluded = List.length not_called;
    stmt_pct = pct (sum (fun fc -> fc.stmts_hit)) (sum (fun fc -> fc.stmts_total));
    branch_pct = pct (sum (fun fc -> fc.branches_hit)) (sum (fun fc -> fc.branches_total));
    mcdc_pct = pct (sum (fun fc -> fc.conditions_hit)) (sum (fun fc -> fc.conditions_total));
    function_pct = pct (List.length called) (List.length scored);
  }

(** Aggregate means across files (unweighted, as the paper's per-file plot
    averages are). *)
let averages files =
  ( Util.Stats.mean (List.map (fun f -> f.stmt_pct) files),
    Util.Stats.mean (List.map (fun f -> f.branch_pct) files),
    Util.Stats.mean (List.map (fun f -> f.mcdc_pct) files) )
