(** Runtime coverage collector: aggregates the interpreter's hook events
    and joins them with the static {!Instrument} points into per-function
    and per-file reports. *)

type t = {
  origin : string;  (** scenario name attributions carry, "" when unnamed *)
  stmt_hits : (int, int) Hashtbl.t;
  decision_outcomes : (int * bool, int) Hashtbl.t;  (** (decision eid, outcome) *)
  switch_hits : (int * int, int) Hashtbl.t;  (** (switch sid, clause idx) *)
  calls : (string, int) Hashtbl.t;
  kernel_launches : (string, int) Hashtbl.t;
  mcdc : Mcdc.t;
  stmt_first : (int, string) Hashtbl.t;  (** sid -> first-covering scenario *)
  decision_first : (int * bool, string) Hashtbl.t;
}

let create ?(origin = "") () =
  {
    origin;
    stmt_hits = Hashtbl.create 1024;
    decision_outcomes = Hashtbl.create 256;
    switch_hits = Hashtbl.create 64;
    calls = Hashtbl.create 64;
    kernel_launches = Hashtbl.create 16;
    mcdc = Mcdc.create ();
    stmt_first = Hashtbl.create 1024;
    decision_first = Hashtbl.create 256;
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Within one collector the origin is constant, so "first covering" is
   simply "covering": membership, not order, is what the table records.
   The scenario order sensitivity is resolved at merge time (least name
   wins), which keeps the attribution independent of execution order. *)
let attribute t tbl key =
  if t.origin <> "" && not (Hashtbl.mem tbl key) then
    Hashtbl.replace tbl key t.origin

let hooks t : Interp.hooks =
  {
    Interp.on_stmt =
      (fun sid ->
        bump t.stmt_hits sid;
        attribute t t.stmt_first sid);
    on_decision =
      (fun eid conds outcome ->
        bump t.decision_outcomes (eid, outcome);
        attribute t t.decision_first (eid, outcome);
        Mcdc.record t.mcdc ~decision_eid:eid ~conds ~outcome);
    on_switch = (fun sid clause -> bump t.switch_hits (sid, clause));
    on_call = (fun name -> bump t.calls name);
    on_kernel_launch = (fun name ~grid:_ ~block:_ -> bump t.kernel_launches name);
    on_function_stmt = (fun _ -> ());
  }

let function_called t name = Hashtbl.mem t.calls name

(* ------------------------------------------------------------------ *)
(* Merging                                                              *)
(* ------------------------------------------------------------------ *)

(* Per-key sum of hit counts.  Addition is commutative and associative,
   and every score below is a *membership* test on the key set (a key is
   present iff its count is > 0, counts never go negative), so merged
   coverage is exact at any partition of the scenario set — not an
   approximation.  See DESIGN.md "Scenario-parallel coverage". *)
let merge_counts dst src =
  Hashtbl.iter
    (fun k n -> Hashtbl.replace dst k (n + Option.value ~default:0 (Hashtbl.find_opt dst k)))
    src

(* Attribution merge: the lexicographically-least covering scenario name
   wins.  Min is commutative, associative and idempotent, so like the
   count sums the result is identical for every partition and merge
   order of the scenario set — and independent of which scenario
   happened to execute first. *)
let merge_first dst src =
  Hashtbl.iter
    (fun k name ->
      match Hashtbl.find_opt dst k with
      | None -> Hashtbl.replace dst k name
      | Some cur -> if name < cur then Hashtbl.replace dst k name)
    src

let merge_into ~into src =
  merge_counts into.stmt_hits src.stmt_hits;
  merge_counts into.decision_outcomes src.decision_outcomes;
  merge_counts into.switch_hits src.switch_hits;
  merge_counts into.calls src.calls;
  merge_counts into.kernel_launches src.kernel_launches;
  Mcdc.merge_into ~into:into.mcdc src.mcdc;
  merge_first into.stmt_first src.stmt_first;
  merge_first into.decision_first src.decision_first

let merge ts =
  let acc = create () in
  List.iter (fun t -> merge_into ~into:acc t) ts;
  acc

(* Deterministic rendering of the full collector state, canonically
   ordered: equal fingerprints iff the collectors are observationally
   identical.  The differential suite compares these across jobs values;
   the property tests across random partitions and merge orders. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  let sorted_list fold tbl = List.sort compare (fold (fun k v acc -> (k, v) :: acc) tbl []) in
  let section name rows render =
    Buffer.add_string buf name;
    Buffer.add_char buf ':';
    List.iter
      (fun kv ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (render kv))
      rows;
    Buffer.add_char buf '\n'
  in
  section "stmt" (sorted_list Hashtbl.fold t.stmt_hits)
    (fun (sid, n) -> Printf.sprintf "%d=%d" sid n);
  section "decision" (sorted_list Hashtbl.fold t.decision_outcomes)
    (fun ((eid, o), n) -> Printf.sprintf "%d/%b=%d" eid o n);
  section "switch" (sorted_list Hashtbl.fold t.switch_hits)
    (fun ((sid, c), n) -> Printf.sprintf "%d/%d=%d" sid c n);
  section "call" (sorted_list Hashtbl.fold t.calls)
    (fun (f, n) -> Printf.sprintf "%s=%d" f n);
  section "kernel" (sorted_list Hashtbl.fold t.kernel_launches)
    (fun (f, n) -> Printf.sprintf "%s=%d" f n);
  section "stmt_first" (sorted_list Hashtbl.fold t.stmt_first)
    (fun (sid, s) -> Printf.sprintf "%d=%s" sid s);
  section "decision_first" (sorted_list Hashtbl.fold t.decision_first)
    (fun ((eid, o), s) -> Printf.sprintf "%d/%b=%s" eid o s);
  section "mcdc" (Mcdc.canonical t.mcdc)
    (fun (eid, vectors) ->
      Printf.sprintf "%d=[%s]" eid
        (String.concat ";"
           (List.map
              (fun (v : Mcdc.vector) ->
                Printf.sprintf "%s->%b"
                  (String.concat ","
                     (List.map
                        (fun (cid, b) ->
                          Printf.sprintf "%d:%s" cid
                            (match b with
                             | None -> "_"
                             | Some true -> "t"
                             | Some false -> "f"))
                        v.Mcdc.conds))
                  v.Mcdc.outcome)
              vectors)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)
(* ------------------------------------------------------------------ *)

type func_coverage = {
  fp : Instrument.func_points;
  called : bool;
  stmts_hit : int;
  stmts_total : int;
  branches_hit : int;
  branches_total : int;
  conditions_hit : int;
  conditions_total : int;
  first_covered_by : string option;
      (** least-named scenario covering any of the function's statements *)
}

let first_covering_stmt t sid = Hashtbl.find_opt t.stmt_first sid
let first_covering_decision t eid outcome = Hashtbl.find_opt t.decision_first (eid, outcome)

let score_function ?(mcdc_mode = `Masking) t (fp : Instrument.func_points) =
  let stmts_hit =
    List.length (List.filter (fun sid -> Hashtbl.mem t.stmt_hits sid) fp.Instrument.stmts)
  in
  let dec_outcomes =
    Util.Stats.sum_int
      (List.map
         (fun (d : Instrument.decision) ->
           (if Hashtbl.mem t.decision_outcomes (d.Instrument.d_eid, true) then 1 else 0)
           + if Hashtbl.mem t.decision_outcomes (d.Instrument.d_eid, false) then 1 else 0)
         fp.Instrument.decisions)
  in
  let switch_outcomes =
    Util.Stats.sum_int
      (List.map
         (fun (sw : Instrument.switch_point) ->
           let n = ref 0 in
           for c = 0 to sw.Instrument.clauses - 1 do
             if Hashtbl.mem t.switch_hits (sw.Instrument.sw_sid, c) then incr n
           done;
           !n)
         fp.Instrument.switches)
  in
  let cond_scores =
    List.map
      (fun (d : Instrument.decision) ->
        Mcdc.decision_score ~mode:mcdc_mode t.mcdc ~decision_eid:d.Instrument.d_eid
          ~conditions:d.Instrument.conditions)
      fp.Instrument.decisions
  in
  let stmts_total = List.length fp.Instrument.stmts in
  let branches_total =
    (2 * List.length fp.Instrument.decisions)
    + Util.Stats.sum_int
        (List.map (fun sw -> sw.Instrument.clauses) fp.Instrument.switches)
  in
  let first_covered_by =
    List.fold_left
      (fun acc sid ->
        match (acc, Hashtbl.find_opt t.stmt_first sid) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (if b < a then b else a))
      None fp.Instrument.stmts
  in
  {
    fp;
    called = function_called t fp.Instrument.fp_name;
    stmts_hit;
    stmts_total;
    branches_hit = dec_outcomes + switch_outcomes;
    branches_total;
    conditions_hit = Util.Stats.sum_int (List.map fst cond_scores);
    conditions_total = Util.Stats.sum_int (List.map snd cond_scores);
    first_covered_by;
  }

type file_coverage = {
  file : string;
  functions : func_coverage list;  (** called functions only *)
  excluded : int;  (** functions never called, excluded as in the paper *)
  stmt_pct : float;
  branch_pct : float;
  mcdc_pct : float;
  function_pct : float;  (** fraction of defined functions entered at all *)
}

let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b

(* Journal the coverage conclusions scoring reaches: a never-entered
   function, or a called function some of whose statements, branches or
   conditions no scenario reached.  The first-covering scenario is part
   of the witness — it proves the function was exercised at all, which
   is what makes the residual gap a finding rather than an exclusion. *)
let record_gap_findings ~file scored =
  List.iter
    (fun fc ->
      let name = fc.fp.Instrument.fp_name in
      let loc = fc.fp.Instrument.fp_loc in
      if not fc.called then
        Provenance.record
          (Provenance.make ~kind:"coverage" ~analysis:"uncovered-function" ~loc
             ~message:(Printf.sprintf "%s is never called by any scenario" name)
             ~witness:
               [
                 Provenance.step ~loc "function" "%s defined in %s" name file;
                 Provenance.step "scenarios"
                   "no scenario's call log contains %s" name;
               ]
             ())
      else if
        fc.stmts_hit < fc.stmts_total
        || fc.branches_hit < fc.branches_total
        || fc.conditions_hit < fc.conditions_total
      then
        Provenance.record
          (Provenance.make ~kind:"coverage" ~analysis:"coverage-gap" ~loc
             ~message:
               (Printf.sprintf
                  "%s has residual gaps: %d/%d statements, %d/%d branches, %d/%d conditions"
                  name fc.stmts_hit fc.stmts_total fc.branches_hit
                  fc.branches_total fc.conditions_hit fc.conditions_total)
             ~witness:
               ((match fc.first_covered_by with
                 | Some sc ->
                   [ Provenance.step "scenario" "first covered by %s" sc ]
                 | None -> [])
                @ [
                    Provenance.step ~loc "function" "%s defined in %s" name file;
                    Provenance.step "residual"
                      "uncovered: %d statements, %d branch outcomes, %d conditions"
                      (fc.stmts_total - fc.stmts_hit)
                      (fc.branches_total - fc.branches_hit)
                      (fc.conditions_total - fc.conditions_hit);
                  ])
             ()))
    scored

let score_file ?(mcdc_mode = `Masking) t ~file (fps : Instrument.func_points list) =
  let scored = List.map (score_function ~mcdc_mode t) fps in
  record_gap_findings ~file scored;
  let called, not_called = List.partition (fun fc -> fc.called) scored in
  let sum f = Util.Stats.sum_int (List.map f called) in
  {
    file;
    functions = called;
    excluded = List.length not_called;
    stmt_pct = pct (sum (fun fc -> fc.stmts_hit)) (sum (fun fc -> fc.stmts_total));
    branch_pct = pct (sum (fun fc -> fc.branches_hit)) (sum (fun fc -> fc.branches_total));
    mcdc_pct = pct (sum (fun fc -> fc.conditions_hit)) (sum (fun fc -> fc.conditions_total));
    function_pct = pct (List.length called) (List.length scored);
  }

(** Aggregate means across files (unweighted, as the paper's per-file plot
    averages are). *)
let averages files =
  ( Util.Stats.mean (List.map (fun f -> f.stmt_pct) files),
    Util.Stats.mean (List.map (fun f -> f.branch_pct) files),
    Util.Stats.mean (List.map (fun f -> f.mcdc_pct) files) )
