(** Benchmark suites for Figures 8(a) and 8(b).

    The GEMM set follows the DeepBench shapes commonly used to compare
    GEMM libraries; the convolution set covers the application domains the
    ISAAC paper evaluates (image classification, object detection, speech,
    scientific stencil-like convs). *)

type gemm_case = { g_label : string; g : Workload.gemm }

let gemm_suite =
  [
    { g_label = "deepbench-train-5124x700x2048"; g = { Workload.m = 5124; n = 700; k = 2048 } };
    { g_label = "deepbench-train-35x700x2048"; g = { Workload.m = 35; n = 700; k = 2048 } };
    { g_label = "deepbench-train-3072x128x1024"; g = { Workload.m = 3072; n = 128; k = 1024 } };
    { g_label = "deepbench-infer-5124x9124x2560"; g = { Workload.m = 5124; n = 9124; k = 2560 } };
    { g_label = "deepbench-infer-512x8x500000"; g = { Workload.m = 512; n = 8; k = 500000 } };
    { g_label = "square-1024"; g = { Workload.m = 1024; n = 1024; k = 1024 } };
    { g_label = "square-4096"; g = { Workload.m = 4096; n = 4096; k = 4096 } };
    { g_label = "yolo-conv18-gemm"; g = { Workload.m = 1024; n = 169; k = 4608 } };
    { g_label = "yolo-conv1-gemm"; g = { Workload.m = 32; n = 173056; k = 27 } };
    { g_label = "skinny-16x16384x1024"; g = { Workload.m = 16; n = 16384; k = 1024 } };
    { g_label = "lstm-2048x64x2048"; g = { Workload.m = 2048; n = 64; k = 2048 } };
    { g_label = "attention-512x512x64"; g = { Workload.m = 512; n = 512; k = 64 } };
  ]

type conv_case = { c_label : string; domain : string; c : Dnn.Layer.conv }

let conv ~in_c ~out_c ~ksize ~stride ~pad ~hw ~batch =
  { Dnn.Layer.in_c; out_c; ksize; stride; pad; in_h = hw; in_w = hw; batch }

let conv_suite =
  [
    { c_label = "vgg-conv3.1"; domain = "classification";
      c = conv ~in_c:128 ~out_c:256 ~ksize:3 ~stride:1 ~pad:1 ~hw:56 ~batch:1 };
    { c_label = "vgg-conv5.1"; domain = "classification";
      c = conv ~in_c:512 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:14 ~batch:1 };
    { c_label = "resnet-conv1"; domain = "classification";
      c = conv ~in_c:3 ~out_c:64 ~ksize:7 ~stride:2 ~pad:3 ~hw:224 ~batch:1 };
    { c_label = "resnet-bottleneck"; domain = "classification";
      c = conv ~in_c:256 ~out_c:64 ~ksize:1 ~stride:1 ~pad:0 ~hw:56 ~batch:1 };
    { c_label = "yolo-conv13"; domain = "detection";
      c = conv ~in_c:512 ~out_c:1024 ~ksize:3 ~stride:1 ~pad:1 ~hw:13 ~batch:1 };
    { c_label = "yolo-conv26"; domain = "detection";
      c = conv ~in_c:256 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:26 ~batch:1 };
    { c_label = "ssd-conv38"; domain = "detection";
      c = conv ~in_c:512 ~out_c:512 ~ksize:3 ~stride:1 ~pad:1 ~hw:38 ~batch:1 };
    { c_label = "deepspeech-conv1"; domain = "speech";
      c = conv ~in_c:1 ~out_c:32 ~ksize:5 ~stride:2 ~pad:2 ~hw:160 ~batch:4 };
    { c_label = "deepspeech-conv2"; domain = "speech";
      c = conv ~in_c:32 ~out_c:32 ~ksize:5 ~stride:1 ~pad:2 ~hw:80 ~batch:4 };
    { c_label = "ocr-conv"; domain = "ocr";
      c = conv ~in_c:64 ~out_c:128 ~ksize:3 ~stride:1 ~pad:1 ~hw:32 ~batch:8 };
    { c_label = "segnet-conv"; domain = "segmentation";
      c = conv ~in_c:64 ~out_c:64 ~ksize:3 ~stride:1 ~pad:1 ~hw:180 ~batch:1 };
    { c_label = "stereo-conv"; domain = "depth";
      c = conv ~in_c:32 ~out_c:32 ~ksize:5 ~stride:1 ~pad:2 ~hw:96 ~batch:1 };
  ]

(** Relative performance of [lib] vs [baseline] on a workload: >1 means
    [lib] is faster. *)
let relative lib baseline w =
  baseline.Library_model.time_ms w /. lib.Library_model.time_ms w

let gemm_comparison ~device =
  Telemetry.with_span ~cat:"gpuperf" "gpuperf.gemm" @@ fun () ->
  let open Library_model in
  let cutlass = cutlass device and cublas = cublas device in
  Telemetry.add "gpuperf.workloads" (List.length gemm_suite);
  List.map
    (fun case ->
      (case.g_label, relative cutlass cublas (Workload.Gemm case.g)))
    gemm_suite

let conv_comparison ~device =
  Telemetry.with_span ~cat:"gpuperf" "gpuperf.conv" @@ fun () ->
  let open Library_model in
  let isaac = isaac device and cudnn = cudnn device in
  Telemetry.add "gpuperf.workloads" (List.length conv_suite);
  List.map
    (fun case ->
      (case.c_label, case.domain, relative isaac cudnn (Workload.Conv case.c)))
    conv_suite
