(** Figure 7: Apollo's object detection (YOLOv2) timed under each library
    implementation — closed-source baselines (cuBLAS, cuDNN), open-source
    alternatives (CUTLASS, ISAAC), and the CPU BLAS libraries that
    demonstrate why a GPU is unavoidable for this workload. *)

type row = {
  impl : string;
  closed_source : bool;
  device_name : string;
  total_ms : float;
  fps : float;
  vs_baseline : float;  (** runtime relative to the cuDNN baseline, >1 = slower *)
}

let implementations ~gpu ~cpu =
  [
    Library_model.cudnn gpu;
    Library_model.cublas gpu;
    Library_model.isaac gpu;
    Library_model.cutlass gpu;
    Library_model.openblas cpu;
    Library_model.atlas cpu;
  ]

let run ?(net = Dnn.Yolo.yolov2) ?(gpu = Device.titan_v) ?(cpu = Device.xeon_e5) () =
  Telemetry.with_span ~cat:"gpuperf" "gpuperf.yolo"
    ~attrs:[ ("gpu", gpu.Device.name); ("cpu", cpu.Device.name) ]
  @@ fun () ->
  Telemetry.incr "gpuperf.yolo_benches";
  let libs = implementations ~gpu ~cpu in
  let times =
    List.map (fun lib -> (lib, Library_model.network_time_ms lib net)) libs
  in
  let baseline =
    match times with (_, t) :: _ -> t | [] -> 1.0
  in
  List.map
    (fun ((lib : Library_model.t), t) ->
      {
        impl = lib.Library_model.lib_name;
        closed_source = lib.Library_model.closed_source;
        device_name = lib.Library_model.device.Device.name;
        total_ms = t;
        fps = 1000.0 /. t;
        vs_baseline = t /. baseline;
      })
    times

(** Per-layer breakdown under one library (used by the examples). *)
let per_layer lib net =
  List.map
    (fun layer ->
      let ms =
        match layer with
        | Dnn.Layer.Conv c -> lib.Library_model.time_ms (Workload.of_conv c)
        | other ->
          let fl = float_of_int (Dnn.Layer.flops other) in
          fl *. 8.0 /. (lib.Library_model.device.Device.mem_bw_gbs *. 1e9 *. 0.6) *. 1000.0
      in
      (Dnn.Layer.name layer, ms))
    net
