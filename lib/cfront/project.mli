(** In-memory project model.

    A project is a set of source files grouped into modules (Apollo's
    perception, planning, ...).  Files live in memory — the corpus
    generator produces them and the analyzers consume them without
    touching the filesystem, which keeps experiments hermetic. *)

type source_file = {
  path : string;  (** project-relative path, e.g. "perception/detector.cc" *)
  modname : string;  (** owning module *)
  header : bool;
  content : string;
}

type modul = { m_name : string; m_files : source_file list }

type t = { p_name : string; p_modules : modul list }

type parsed_file = { file : source_file; tu : Ast.tu }

type parsed = {
  project : t;
  files : parsed_file list;
  types_key : string;  (** hash of the shared type-name pre-scan *)
}

val make : name:string -> modul list -> t
val all_files : t -> source_file list
val file_count : t -> int

(** Cheap cross-file type discovery: struct/class/enum/typedef names
    collected by a token scan over every file, standing in for the
    header-shared declarations of a real build. *)
val scan_type_names : source_file list -> string list

(** Parse every file, seeding each unit's type registry with
    {!scan_type_names} of the whole project. *)
val parse : t -> parsed

(** Cache key for the whole source tree: every path + content, in
    order.  Whole-project artifacts (per-rule MISRA results) key on
    this. *)
val content_key : t -> string

(** Cache key for one parsed file: path + content hash + the shared
    type-name scan.  Per-file artifacts (dataflow summaries) key on
    this. *)
val file_key : parsed -> parsed_file -> string

val parsed_files_of_module : parsed -> string -> parsed_file list
val module_names : t -> string list

(** Functions with a body across the given files. *)
val defined_functions : parsed_file list -> Ast.func list

val all_functions : parsed -> Ast.func list
