(** Call graph construction and recursion detection.

    Call targets are resolved best-effort by name: an unqualified callee
    name matches a function with that simple name, preferring one in the
    same scope.  This matches what a linkerless source-level tool (the kind
    the paper used) can see.

    Every call site is additionally classified and accounted for
    ({!call_site}/{!resolution}), so downstream whole-program analyses
    know exactly how much of the graph is trustworthy: method calls whose
    bare field name matches several unrelated functions are counted as
    ambiguous instead of fabricating an edge, calls through function
    pointers are counted as indirect, and the legacy last-candidate
    fallback for plain identifier calls is kept (reports depend on it)
    but flagged as a guess. *)

module SM = Map.Make (String)

type call_kind =
  | Direct  (** plain identifier call: [F(x)] *)
  | Method  (** member call: [obj.F(x)] / [p->F(x)], resolved by field name *)
  | Kernel  (** CUDA kernel launch: [F<<<g,b>>>(x)] *)
  | Indirect  (** callee is an arbitrary expression (function pointer) *)

type outcome =
  | Resolved of string  (** unique or scope-preferred definition *)
  | Guessed of string * string list
      (** legacy fallback for [Direct]/[Kernel] sites: several candidates,
          none in the caller's scope; the edge goes to the first-defined
          candidate and the full candidate list is recorded *)
  | Ambiguous of string list
      (** several candidates, none preferable — no edge is built *)
  | Unresolved  (** named callee with no defined candidate *)
  | Indirect_call  (** callee is not a name at all *)

type call_site = {
  cs_caller : string;  (** qualified name of the calling function *)
  cs_name : string;  (** callee as written; ["<expr>"] for indirect calls *)
  cs_kind : call_kind;
  cs_loc : Loc.t;
  cs_outcome : outcome;
}

type resolution = {
  total_sites : int;
  resolved : int;
  guessed : int;
  ambiguous : int;
  unresolved : int;
  indirect : int;
  kernel_launches : int;
  fnptr_taken : string list;
      (** qualified names of defined functions whose address is taken
          (or that are referenced outside a call position), sorted *)
}

type t = {
  nodes : string list;  (** qualified function names with a definition *)
  edges : (string * string) list;  (** caller -> callee, both qualified *)
  calls_of : string list SM.t;
  callers_of : string list SM.t;
  sites : call_site list;  (** every call site in traversal order *)
  resolution : resolution;
}

(** Raw callee names mentioned in a function body, in source order —
    the historical interface several syntactic rules consume. *)
let calls_in_body (fn : Ast.func) =
  let acc = ref [] in
  Ast.iter_exprs_of_func
    (fun e ->
      match e.Ast.e with
      | Ast.Call ({ e = Ast.Id name; _ }, _) -> acc := name :: !acc
      | Ast.Kernel_launch { kernel = { e = Ast.Id name; _ }; _ } -> acc := name :: !acc
      | Ast.Call ({ e = Ast.Member { field; _ }; _ }, _) -> acc := field :: !acc
      | _ -> ())
    fn;
  List.rev !acc

(* Local declaration and parameter names of a function, used to tell a
   function-pointer variable call [fp()] apart from an unresolved named
   call, and to avoid reporting shadowed identifiers as address-taken
   functions. *)
let local_names (fn : Ast.func) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace tbl p.Ast.p_name ()) fn.Ast.f_params;
  (match fn.Ast.f_body with
   | None -> ()
   | Some body ->
     Ast.iter_stmts
       (fun s ->
         match s.Ast.s with
         | Ast.Sdecl ds | Ast.Sfor { init = Ast.Fi_decl ds; _ } ->
           List.iter (fun d -> Hashtbl.replace tbl d.Ast.v_name ()) ds
         | _ -> ())
       body);
  tbl

(* A raw (unresolved) site produced by the body walk. *)
type raw_site =
  | Rnamed of call_kind * string * Loc.t  (** named callee *)
  | Rindirect of call_kind * Loc.t  (** callee is an expression *)
  | Rfnptr of string * Loc.t  (** function referenced outside call position *)

(* Walk a function body, classifying call sites and function references.
   The callee sub-expression of a named call is not revisited as a value
   use, so [F] in [F(x)] never counts as a function reference while [&F]
   in [g(&F)] does. *)
let raw_sites_of_func (fn : Ast.func) =
  let locals = local_names fn in
  let acc = ref [] in
  let push r = acc := r :: !acc in
  let rec walk (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Call ({ e = Ast.Id name; _ }, args) ->
      push (Rnamed (Direct, name, e.Ast.eloc));
      List.iter walk args
    | Ast.Call ({ e = Ast.Member { obj; field; _ }; _ }, args) ->
      push (Rnamed (Method, field, e.Ast.eloc));
      walk obj;
      List.iter walk args
    | Ast.Call (callee, args) ->
      push (Rindirect (Indirect, e.Ast.eloc));
      walk callee;
      List.iter walk args
    | Ast.Kernel_launch { kernel = { e = Ast.Id name; _ }; grid; block; args } ->
      push (Rnamed (Kernel, name, e.Ast.eloc));
      walk grid;
      walk block;
      List.iter walk args
    | Ast.Kernel_launch { kernel; grid; block; args } ->
      push (Rindirect (Kernel, e.Ast.eloc));
      walk kernel;
      walk grid;
      walk block;
      List.iter walk args
    | Ast.Unary (Ast.Addr_of, { e = Ast.Id name; eloc; _ }) ->
      if not (Hashtbl.mem locals name) then push (Rfnptr (name, eloc))
    | Ast.Id name ->
      if not (Hashtbl.mem locals name) then push (Rfnptr (name, e.Ast.eloc))
    | Ast.Int_const _ | Ast.Float_const _ | Ast.Bool_const _ | Ast.Str_const _
    | Ast.Char_const _ | Ast.Nullptr | Ast.Sizeof_type _ -> ()
    | Ast.Unary (_, a) | Ast.Postfix (_, a) | Ast.C_cast (_, a)
    | Ast.Cpp_cast (_, _, a) | Ast.Sizeof_expr a
    | Ast.Delete { target = a; _ } -> walk a
    | Ast.Throw a -> Option.iter walk a
    | Ast.Binary (_, a, b) | Ast.Assign (_, a, b) | Ast.Index (a, b) ->
      walk a;
      walk b
    | Ast.Ternary (a, b, c) ->
      walk a;
      walk b;
      walk c
    | Ast.Member { obj; _ } -> walk obj
    | Ast.New { array_size; init_args; _ } ->
      Option.iter walk array_size;
      List.iter walk init_args
  in
  (match fn.Ast.f_body with
   | None -> ()
   | Some body ->
     Ast.iter_stmts
       (fun s ->
         let on_decls ds =
           List.iter (fun d -> Option.iter walk d.Ast.v_init) ds
         in
         match s.Ast.s with
         | Ast.Sexpr e -> walk e
         | Ast.Sdecl ds -> on_decls ds
         | Ast.Sif { cond; _ } -> walk cond
         | Ast.Swhile (c, _) | Ast.Sdo_while (_, c) -> walk c
         | Ast.Sfor { init; cond; update; _ } ->
           (match init with
            | Ast.Fi_decl ds -> on_decls ds
            | Ast.Fi_expr e -> walk e
            | Ast.Fi_empty -> ());
           Option.iter walk cond;
           Option.iter walk update
         | Ast.Sswitch (e, _) | Ast.Scase e -> walk e
         | Ast.Sreturn (Some e) -> walk e
         | Ast.Sreturn None | Ast.Sempty | Ast.Sblock _ | Ast.Sdefault
         | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Slabel _
         | Ast.Stry _ -> ())
       body);
  List.rev !acc

let simple_of name =
  match List.rev (String.split_on_char ':' name) with
  | last :: _ when last <> "" -> last
  | _ -> name

let build (funcs : Ast.func list) =
  let defined = List.filter (fun f -> f.Ast.f_body <> None) funcs in
  let by_simple =
    List.fold_left
      (fun m f ->
        let q = Ast.qualified_name f in
        SM.update f.Ast.f_name (function None -> Some [ q ] | Some l -> Some (q :: l)) m)
      SM.empty defined
  in
  let by_qualified =
    List.fold_left (fun m f -> SM.add (Ast.qualified_name f) f m) SM.empty defined
  in
  let file_of q =
    match SM.find_opt q by_qualified with
    | Some f -> f.Ast.f_loc.Loc.file
    | None -> ""
  in
  (* Resolve a named call site.  [Direct]/[Kernel] sites keep the
     historical behaviour (scope preference, then the first-defined
     candidate) so every existing report is unchanged, but the fallback
     is recorded as a guess.  [Method] sites resolved by bare field name
     must not guess: with several candidates we prefer the caller's
     scope, then a unique same-file candidate, and otherwise record the
     ambiguity with no edge. *)
  let resolve ~(caller : Ast.func) kind name =
    if SM.mem name by_qualified then Resolved name
    else
      let simple = simple_of name in
      match SM.find_opt simple by_simple with
      | None -> Unresolved
      | Some [ q ] -> Resolved q
      | Some candidates -> (
        let scoped = String.concat "::" (caller.Ast.f_scope @ [ simple ]) in
        if List.mem scoped candidates then Resolved scoped
        else
          match kind with
          | Direct | Kernel | Indirect ->
            Guessed (List.nth candidates (List.length candidates - 1), candidates)
          | Method -> (
            let caller_file = caller.Ast.f_loc.Loc.file in
            match List.filter (fun q -> file_of q = caller_file) candidates with
            | [ q ] -> Resolved q
            | _ -> Ambiguous candidates))
  in
  let raw_by_func = List.map (fun f -> (f, raw_sites_of_func f)) defined in
  let sites =
    List.concat_map
      (fun (f, raws) ->
        let caller = Ast.qualified_name f in
        List.filter_map
          (fun raw ->
            match raw with
            | Rnamed (kind, name, loc) ->
              Some
                { cs_caller = caller; cs_name = name; cs_kind = kind;
                  cs_loc = loc; cs_outcome = resolve ~caller:f kind name }
            | Rindirect (kind, loc) ->
              Some
                { cs_caller = caller; cs_name = "<expr>"; cs_kind = kind;
                  cs_loc = loc; cs_outcome = Indirect_call }
            | Rfnptr _ -> None)
          raws)
      raw_by_func
  in
  let fnptr_taken =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, raws) ->
           List.filter_map
             (fun raw ->
               match raw with
               | Rfnptr (name, _) -> (
                 (* only names that denote a defined function *)
                 if SM.mem name by_qualified then Some name
                 else
                   match SM.find_opt (simple_of name) by_simple with
                   | Some [ q ] -> Some q
                   | _ -> None)
               | _ -> None)
             raws)
         raw_by_func)
  in
  let edges =
    List.filter_map
      (fun s ->
        match s.cs_outcome with
        | Resolved q | Guessed (q, _) -> Some (s.cs_caller, q)
        | Ambiguous _ | Unresolved | Indirect_call -> None)
      sites
  in
  let count p = List.length (List.filter p sites) in
  let resolution =
    {
      total_sites = List.length sites;
      resolved = count (fun s -> match s.cs_outcome with Resolved _ -> true | _ -> false);
      guessed = count (fun s -> match s.cs_outcome with Guessed _ -> true | _ -> false);
      ambiguous =
        count (fun s -> match s.cs_outcome with Ambiguous _ -> true | _ -> false);
      unresolved = count (fun s -> s.cs_outcome = Unresolved);
      indirect = count (fun s -> s.cs_outcome = Indirect_call);
      kernel_launches = count (fun s -> s.cs_kind = Kernel);
      fnptr_taken;
    }
  in
  let add_edge m (a, b) =
    SM.update a (function None -> Some [ b ] | Some l -> Some (b :: l)) m
  in
  let calls_of = List.fold_left add_edge SM.empty edges in
  let callers_of = List.fold_left (fun m (a, b) -> add_edge m (b, a)) SM.empty edges in
  {
    nodes = List.map Ast.qualified_name defined;
    edges;
    calls_of;
    callers_of;
    sites;
    resolution;
  }

let callees t name = Option.value ~default:[] (SM.find_opt name t.calls_of)
let callers t name = Option.value ~default:[] (SM.find_opt name t.callers_of)

(** Fan-out (distinct callees) and fan-in (distinct callers). *)
let fan_out t name = List.length (List.sort_uniq compare (callees t name))
let fan_in t name = List.length (List.sort_uniq compare (callers t name))

(** Tarjan's strongly-connected components; components of size > 1 (or a
    self-loop) indicate recursion.  Callees are visited before the
    component containing their caller is emitted, and results are
    prepended, so the returned list is in topological order: a component
    appears before every component it calls into. *)
let sccs t =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.nodes;
  !result

(** Functions involved in recursion: members of a multi-node SCC, or
    direct self-callers. *)
let recursive_functions t =
  let multi =
    List.concat (List.filter (fun comp -> List.length comp > 1) (sccs t))
  in
  let selfloop = List.filter (fun v -> List.mem v (callees t v)) t.nodes in
  List.sort_uniq compare (multi @ selfloop)

(** Recursion cycles as witness lists: every multi-node SCC (mutual
    recursion) plus singleton cycles for direct self-callers, in SCC
    topological order. *)
let recursion_cycles t =
  let components = sccs t in
  let multi = List.filter (fun comp -> List.length comp > 1) components in
  let in_multi v = List.exists (fun comp -> List.mem v comp) multi in
  let selfs =
    List.filter (fun v -> List.mem v (callees t v) && not (in_multi v)) t.nodes
  in
  multi @ List.map (fun v -> [ v ]) selfs
