(** In-memory project model.

    A project is a set of source files grouped into modules (Apollo's
    perception, planning, …).  Files live in memory — the corpus generator
    produces them and the analyzers consume them without touching the
    filesystem, which keeps experiments hermetic. *)

type source_file = {
  path : string;  (** project-relative path, e.g. "perception/detector.cc" *)
  modname : string;  (** owning module, e.g. "perception" *)
  header : bool;
  content : string;
}

type modul = { m_name : string; m_files : source_file list }

type t = { p_name : string; p_modules : modul list }

type parsed_file = { file : source_file; tu : Ast.tu }

type parsed = {
  project : t;
  files : parsed_file list;
  types_key : string;
      (** hash of the shared type-name pre-scan — part of every per-file
          cache key, since the parse of one file depends on type names
          declared in every other *)
}

let make ~name modules = { p_name = name; p_modules = modules }

let all_files t = List.concat_map (fun m -> m.m_files) t.p_modules

let file_count t = List.length (all_files t)

(* Cheap cross-file type discovery: real projects share struct/typedef
   names through headers; an in-memory project shares them through this
   pre-scan, so [struct X] defined in one file parses as a type in all. *)
let type_names_of_file (f : source_file) =
  let names = ref [] in
  let toks = (Lexer.tokenize ~file:f.path f.content).Lexer.tokens in
  let rec go = function
    | { Token.kind = Token.Keyword ("struct" | "class" | "enum"); _ }
      :: ({ Token.kind = Token.Ident name; _ } :: _ as rest) ->
      names := name :: !names;
      go rest
    | { Token.kind = Token.Keyword "typedef"; _ } :: rest ->
      (* the identifier just before the terminating ';' *)
      let rec find_name last = function
        | { Token.kind = Token.Punct ";"; _ } :: rest' ->
          (match last with Some n -> names := n :: !names | None -> ());
          go rest'
        | { Token.kind = Token.Ident n; _ } :: rest' -> find_name (Some n) rest'
        | _ :: rest' -> find_name last rest'
        | [] -> ()
      in
      find_name None rest
    | _ :: rest -> go rest
    | [] -> ()
  in
  go toks;
  List.rev !names

let scan_type_names (files : source_file list) =
  List.sort_uniq compare
    (List.concat (Telemetry.parallel_map type_names_of_file files))

(* Cache keys.  A file's parse depends on its path (locations), its
   content, and the project-wide type-name scan; the project key folds
   every path + content, in order.  All hashing is FNV-1a via Cache. *)

let content_key t =
  Cache.fnv1a64
    (String.concat "\x00"
       (List.concat_map (fun f -> [ f.path; f.content ]) (all_files t)))

let file_key parsed (pf : parsed_file) =
  Cache.fnv1a64
    (String.concat "\x00"
       [ pf.file.path; Cache.fnv1a64 pf.file.content; parsed.types_key ])

(* Both the pre-scan and the per-file parse fan out over
   [Telemetry.parallel_map]: files are independent once the shared type
   names are known, results come back in file order, and at --jobs 1 the
   map *is* List.map, so sequential runs take the exact historical path. *)
let parse t =
  let sp = Telemetry.start_span ~cat:"cfront" "parse" in
  let t0 = Telemetry.now_us () in
  let extra_types =
    Telemetry.with_span ~cat:"cfront" "parse.scan_types" (fun () ->
        scan_type_names (all_files t))
  in
  let types_key = Cache.fnv1a64 (String.concat "\x00" extra_types) in
  let files =
    Telemetry.parallel_map
      (fun f ->
        let pf =
          Telemetry.timed "parse.file_us" @@ fun () ->
          let fresh () =
            { file = f; tu = Parser.parse_file ~extra_types ~file:f.path f.content }
          in
          match Cache.global () with
          | None -> fresh ()
          | Some c ->
            (* Content-addressed parse artifact.  On a hit the skipped
               parse must still consume its global id range so later
               parses start from cold-identical bases (the cached tu
               carries the ids it was recorded with). *)
            let key =
              Cache.key ~kind:"parse"
                [ f.path; Cache.fnv1a64 f.content; types_key ]
            in
            (match Cache.find c ~kind:"parse" ~key with
             | Some (tu : Ast.tu) ->
               Parser.reserve_ids ~eids:tu.Ast.n_exprs ~sids:tu.Ast.n_stmts;
               { file = f; tu }
             | None ->
               let pf = fresh () in
               Cache.store c ~owner:f.path ~kind:"parse" ~key pf.tu;
               pf)
        in
        Telemetry.observe "parse.file_ast_nodes"
          (float_of_int (pf.tu.Ast.n_exprs + pf.tu.Ast.n_stmts));
        pf)
      (all_files t)
  in
  let n_files = List.length files in
  let ast_nodes =
    List.fold_left
      (fun acc pf -> acc + pf.tu.Ast.n_exprs + pf.tu.Ast.n_stmts)
      0 files
  in
  Telemetry.add "parse.files" n_files;
  Telemetry.add "parse.ast_nodes" ast_nodes;
  Telemetry.add "parse.diagnostics"
    (List.fold_left (fun acc pf -> acc + List.length pf.tu.Ast.diags) 0 files);
  let dt_s = (Telemetry.now_us () -. t0) /. 1e6 in
  if Telemetry.enabled () then
    Telemetry.set_gauge "parse.files_per_s"
      (float_of_int n_files /. Stdlib.max 1e-9 dt_s);
  Telemetry.end_span sp
    ~attrs:[ ("files", string_of_int n_files);
             ("ast_nodes", string_of_int ast_nodes) ];
  { project = t; files; types_key }

let parsed_files_of_module parsed modname =
  List.filter (fun pf -> pf.file.modname = modname) parsed.files

let module_names t = List.map (fun m -> m.m_name) t.p_modules

(** All functions with a body across a list of parsed files. *)
let defined_functions pfs =
  List.concat_map
    (fun pf ->
      List.filter (fun f -> f.Ast.f_body <> None) (Ast.functions_of_tu pf.tu))
    pfs

let all_functions parsed = defined_functions parsed.files
