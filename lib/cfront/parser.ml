(** Recursive-descent parser for the C/C++/CUDA subset.

    The parser is *tolerant*: any top-level region it cannot parse is
    skipped (to the next balanced [;] or [}]) and recorded as
    [Ast.Tunparsed], the way fuzzy industrial analyzers such as Lizard
    behave.  Inside function bodies parsing is strict; a body that fails
    aborts only that definition.

    Type-vs-expression ambiguities (the classic [T * x;] problem) are
    resolved with a registry of known type names: every typedef, struct,
    class and enum seen so far registers its name, pre-seeded with common
    standard and CUDA type names. *)

exception Parse_error of string * Loc.t

type state = {
  toks : Token.t array;
  mutable pos : int;
  mutable n_eids : int;
  mutable n_sids : int;
  mutable type_names : (string, unit) Hashtbl.t;
  mutable diags : string list;
  mutable pending_tops : Ast.top list;
      (** extra declarators of the top currently being parsed *)
}

(* Expression/statement ids are globally unique across every translation
   unit parsed in the process: the coverage collector keys its counters on
   them, and a multi-file program must not alias ids between files.
   Atomic so translation units may be parsed on concurrent domains
   (Cfront.Project.parse under --jobs); ids then interleave between
   files but never alias, and sequential parses allocate the exact ids
   they always did. *)
let global_eid = Atomic.make 0
let global_sid = Atomic.make 0

(* Id-trajectory hooks for the artifact cache (Cache/--cache DIR): a
   cache hit must consume exactly the id range the skipped parse would
   have allocated, so every later parse in the process starts from the
   same base a cold run would give it — that is what keeps collector
   fingerprints (which embed raw eids/sids) byte-identical between cold
   and warm runs. *)
let id_state () = (Atomic.get global_eid, Atomic.get global_sid)

let reserve_ids ~eids ~sids =
  ignore (Atomic.fetch_and_add global_eid eids);
  ignore (Atomic.fetch_and_add global_sid sids)

(* Only for cache-enabled runs (Iso26262.Audit resets before parsing so
   the trajectory is process-position-independent and artifacts recorded
   by one process are hits in the next); never called on the cold
   no-cache oracle path, whose historical id sequence stays untouched. *)
let reset_ids () =
  Atomic.set global_eid 0;
  Atomic.set global_sid 0

(* Pin the counters to an absolute base.  Cache-enabled coverage phases
   use fixed, well-separated bases so their parses — and therefore the
   collector fingerprints and cached outcomes keyed on those ids — are
   independent of how many ids the corpus consumed before them: editing
   a corpus file then no longer invalidates the coverage artifacts.
   Safe because coverage ids never need to be globally unique against
   corpus ids (each phase scores its own collector over its own parse);
   like [reset_ids], never called on the cold no-cache oracle path. *)
let set_ids ~eids ~sids =
  Atomic.set global_eid eids;
  Atomic.set global_sid sids

let builtin_type_names =
  [
    "size_t"; "ssize_t"; "ptrdiff_t"; "int8_t"; "int16_t"; "int32_t";
    "int64_t"; "uint8_t"; "uint16_t"; "uint32_t"; "uint64_t"; "uintptr_t";
    "FILE"; "dim3"; "float2"; "float3"; "float4"; "cudaError_t";
    "cudaStream_t"; "string"; "std::string";
  ]

let make_state toks =
  let type_names = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace type_names n ()) builtin_type_names;
  { toks = Array.of_list toks; pos = 0; n_eids = 0; n_sids = 0; type_names;
    diags = []; pending_tops = [] }

let cur st = st.toks.(Stdlib.min st.pos (Array.length st.toks - 1))
let cur_kind st = (cur st).Token.kind
let cur_loc st = (cur st).Token.loc
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let peek_kind_at st n =
  let i = Stdlib.min (st.pos + n) (Array.length st.toks - 1) in
  st.toks.(i).Token.kind

let err st msg = raise (Parse_error (msg, cur_loc st))

(* Location of the last consumed token: the closing brace of a body just
   parsed, used for function end lines. *)
let prev_loc st = st.toks.(Stdlib.max 0 (st.pos - 1)).Token.loc

let is_punct st p = match cur_kind st with Token.Punct q -> q = p | _ -> false
let is_keyword st k = match cur_kind st with Token.Keyword q -> q = k | _ -> false

let accept_punct st p = if is_punct st p then (advance st; true) else false
let accept_keyword st k = if is_keyword st k then (advance st; true) else false

let expect_punct st p =
  if not (accept_punct st p) then
    err st (Printf.sprintf "expected '%s', found %s" p (Token.to_string (cur st)))

let expect_keyword st k =
  if not (accept_keyword st k) then
    err st (Printf.sprintf "expected '%s', found %s" k (Token.to_string (cur st)))

let expect_ident st =
  match cur_kind st with
  | Token.Ident s -> advance st; s
  | _ -> err st (Printf.sprintf "expected identifier, found %s" (Token.to_string (cur st)))

let fresh_eid st =
  st.n_eids <- st.n_eids + 1;
  Atomic.fetch_and_add global_eid 1

let fresh_sid st =
  st.n_sids <- st.n_sids + 1;
  Atomic.fetch_and_add global_sid 1

let mk_expr st loc e = { Ast.e; eloc = loc; eid = fresh_eid st }
let mk_stmt st loc s = { Ast.s; sloc = loc; sid = fresh_sid st }

let register_type st name = Hashtbl.replace st.type_names name ()
let is_type_name st name = Hashtbl.mem st.type_names name

let type_keywords =
  [ "void"; "bool"; "char"; "short"; "int"; "long"; "float"; "double";
    "signed"; "unsigned"; "auto" ]

let qualifier_keywords =
  [ "const"; "volatile"; "static"; "extern"; "inline"; "virtual";
    "__global__"; "__device__"; "__host__"; "__shared__"; "__constant__";
    "__restrict__"; "struct"; "class"; "typename" ]

(** Does a declaration start at the current token?  Type keywords always do;
    an identifier does when it is a registered type name. *)
let at_type_start st =
  match cur_kind st with
  | Token.Keyword k -> List.mem k type_keywords || List.mem k qualifier_keywords
  | Token.Ident name ->
    (* qualified name A::B — check head segment too *)
    is_type_name st name
    || (match peek_kind_at st 1 with
        | Token.Punct "::" ->
          (match peek_kind_at st 2 with
           | Token.Ident n2 -> is_type_name st (name ^ "::" ^ n2)
           | _ -> false)
        | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

type decl_quals = {
  mutable q_const : bool;
  mutable q_static : bool;
  mutable q_extern : bool;
  mutable q_inline : bool;
  mutable q_virtual : bool;
  mutable q_global_fn : bool;
  mutable q_device : bool;
  mutable q_host : bool;
  mutable q_shared : bool;
  mutable q_constant : bool;
}

let fresh_quals () =
  { q_const = false; q_static = false; q_extern = false; q_inline = false;
    q_virtual = false; q_global_fn = false; q_device = false; q_host = false;
    q_shared = false; q_constant = false }

let rec eat_qualifiers st q =
  match cur_kind st with
  | Token.Keyword "const" -> advance st; q.q_const <- true; eat_qualifiers st q
  | Token.Keyword "volatile" -> advance st; eat_qualifiers st q
  | Token.Keyword "static" -> advance st; q.q_static <- true; eat_qualifiers st q
  | Token.Keyword "extern" ->
    advance st;
    (* extern "C" *)
    (match cur_kind st with Token.String_lit _ -> advance st | _ -> ());
    q.q_extern <- true;
    eat_qualifiers st q
  | Token.Keyword "inline" -> advance st; q.q_inline <- true; eat_qualifiers st q
  | Token.Keyword "virtual" -> advance st; q.q_virtual <- true; eat_qualifiers st q
  | Token.Keyword "__global__" -> advance st; q.q_global_fn <- true; eat_qualifiers st q
  | Token.Keyword "__device__" -> advance st; q.q_device <- true; eat_qualifiers st q
  | Token.Keyword "__host__" -> advance st; q.q_host <- true; eat_qualifiers st q
  | Token.Keyword "__shared__" -> advance st; q.q_shared <- true; eat_qualifiers st q
  | Token.Keyword "__constant__" -> advance st; q.q_constant <- true; eat_qualifiers st q
  | Token.Keyword "__restrict__" -> advance st; eat_qualifiers st q
  | _ -> ()

(** Parse a (possibly qualified, possibly template-instantiated) type name:
    [ns::Name<T1, T2>]. *)
let rec parse_named_type st =
  let first = expect_ident st in
  let rec qualify acc =
    if is_punct st "::" then begin
      advance st;
      let seg = expect_ident st in
      qualify (acc ^ "::" ^ seg)
    end
    else acc
  in
  let name = qualify first in
  if is_punct st "<" then begin
    advance st;
    let args = ref [] in
    if not (is_punct st ">") then begin
      args := [ parse_type st ];
      while accept_punct st "," do
        args := parse_type st :: !args
      done
    end;
    expect_punct st ">";
    Ast.Ttemplate (name, List.rev !args)
  end
  else Ast.Tnamed name

(** Parse a base type (specifier sequence without declarator). *)
and parse_base_type st =
  let quals = fresh_quals () in
  eat_qualifiers st quals;
  let base =
    match cur_kind st with
    | Token.Keyword "void" -> advance st; Ast.Tvoid
    | Token.Keyword "bool" -> advance st; Ast.Tbool
    | Token.Keyword "char" -> advance st; Ast.Tchar
    | Token.Keyword "float" -> advance st; Ast.Tfloat
    | Token.Keyword "double" -> advance st; Ast.Tdouble
    | Token.Keyword "auto" -> advance st; Ast.Tauto
    | Token.Keyword ("signed" | "unsigned" | "short" | "int" | "long") ->
      let unsigned = ref false in
      let width = ref `Int in
      let longs = ref 0 in
      let rec go () =
        match cur_kind st with
        | Token.Keyword "unsigned" -> unsigned := true; advance st; go ()
        | Token.Keyword "signed" -> advance st; go ()
        | Token.Keyword "short" -> width := `Short; advance st; go ()
        | Token.Keyword "long" ->
          incr longs;
          width := (if !longs >= 2 then `Longlong else `Long);
          advance st;
          go ()
        | Token.Keyword "int" -> advance st; go ()
        | _ -> ()
      in
      go ();
      Ast.Tint { unsigned = !unsigned; width = !width }
    | Token.Ident _ -> parse_named_type st
    | _ -> err st (Printf.sprintf "expected type, found %s" (Token.to_string (cur st)))
  in
  (* trailing const: [int const] *)
  let quals2 = fresh_quals () in
  eat_qualifiers st quals2;
  let base = if quals.q_const || quals2.q_const then Ast.Tconst base else base in
  (base, quals)

(** Pointer/reference declarator suffix: [*], [* const], [&]. *)
and parse_ptr_suffix st base =
  if is_punct st "*" then begin
    advance st;
    let _ = accept_keyword st "const" in
    let _ = accept_keyword st "__restrict__" in
    parse_ptr_suffix st (Ast.Tptr base)
  end
  else if is_punct st "&" then begin
    advance st;
    Ast.Tref base
  end
  else base

and parse_type st =
  let base, _ = parse_base_type st in
  parse_ptr_suffix st base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let assign_op_of_punct = function
  | "=" -> Some Ast.A_eq
  | "+=" -> Some Ast.A_add
  | "-=" -> Some Ast.A_sub
  | "*=" -> Some Ast.A_mul
  | "/=" -> Some Ast.A_div
  | "%=" -> Some Ast.A_mod
  | "<<=" -> Some Ast.A_shl
  | ">>=" -> Some Ast.A_shr
  | "&=" -> Some Ast.A_and
  | "|=" -> Some Ast.A_or
  | "^=" -> Some Ast.A_xor
  | _ -> None

(** Is the parenthesized region starting at the current '(' a type cast?
    Only recognizes casts to built-in scalar types and registered type
    names (optionally with pointer stars). *)
let looks_like_cast st =
  (* current token is '(' *)
  let rec scan i depth saw_type =
    match peek_kind_at st i with
    | Token.Punct ")" when depth = 0 -> saw_type
    | Token.Punct "(" -> scan (i + 1) (depth + 1) saw_type
    | Token.Punct ")" -> scan (i + 1) (depth - 1) saw_type
    | Token.Keyword k when List.mem k type_keywords -> scan (i + 1) depth true
    | Token.Keyword ("const" | "unsigned" | "signed" | "struct") -> scan (i + 1) depth saw_type
    | Token.Ident name when saw_type = false && is_type_name st name ->
      scan (i + 1) depth true
    | Token.Punct ("*" | "&" | "::" | "<" | ">" | ",") when saw_type -> scan (i + 1) depth saw_type
    | Token.Punct "::" -> scan (i + 1) depth saw_type
    | _ -> false
  in
  scan 1 0 false

(* Binary operator precedence levels, loosest first. *)
let binop_levels =
  [|
    [ ("||", Ast.Lor) ];
    [ ("&&", Ast.Land) ];
    [ ("|", Ast.Bor) ];
    [ ("^", Ast.Bxor) ];
    [ ("&", Ast.Band) ];
    [ ("==", Ast.Eq); ("!=", Ast.Ne) ];
    [ ("<", Ast.Lt); (">", Ast.Gt); ("<=", Ast.Le); (">=", Ast.Ge) ];
    [ ("<<", Ast.Shl); (">>", Ast.Shr) ];
    [ ("+", Ast.Add); ("-", Ast.Sub) ];
    [ ("*", Ast.Mul); ("/", Ast.Div); ("%", Ast.Mod) ];
  |]

let rec parse_expr st = parse_comma st

and parse_comma st =
  let lhs = parse_assignment st in
  if is_punct st "," then begin
    let loc = cur_loc st in
    advance st;
    let rhs = parse_comma st in
    mk_expr st loc (Ast.Binary (Ast.Comma, lhs, rhs))
  end
  else lhs

and parse_assignment st =
  let lhs = parse_ternary st in
  match cur_kind st with
  | Token.Punct p ->
    (match assign_op_of_punct p with
     | Some op ->
       let loc = cur_loc st in
       advance st;
       let rhs = parse_assignment st in
       mk_expr st loc (Ast.Assign (op, lhs, rhs))
     | None -> lhs)
  | _ -> lhs

and parse_ternary st =
  let cond = parse_binary st 0 in
  if is_punct st "?" then begin
    let loc = cur_loc st in
    advance st;
    let then_ = parse_assignment st in
    expect_punct st ":";
    let else_ = parse_assignment st in
    mk_expr st loc (Ast.Ternary (cond, then_, else_))
  end
  else cond

and parse_binary st level =
  if level >= Array.length binop_levels then parse_unary st
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match cur_kind st with
      | Token.Punct p when List.mem_assoc p ops ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := mk_expr st loc (Ast.Binary (List.assoc p ops, !lhs, rhs))
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  let loc = cur_loc st in
  match cur_kind st with
  | Token.Punct "-" -> advance st; mk_expr st loc (Ast.Unary (Ast.Neg, parse_unary st))
  | Token.Punct "+" -> advance st; mk_expr st loc (Ast.Unary (Ast.Pos, parse_unary st))
  | Token.Punct "!" -> advance st; mk_expr st loc (Ast.Unary (Ast.Lnot, parse_unary st))
  | Token.Punct "~" -> advance st; mk_expr st loc (Ast.Unary (Ast.Bnot, parse_unary st))
  | Token.Punct "++" -> advance st; mk_expr st loc (Ast.Unary (Ast.Pre_inc, parse_unary st))
  | Token.Punct "--" -> advance st; mk_expr st loc (Ast.Unary (Ast.Pre_dec, parse_unary st))
  | Token.Punct "*" -> advance st; mk_expr st loc (Ast.Unary (Ast.Deref, parse_unary st))
  | Token.Punct "&" -> advance st; mk_expr st loc (Ast.Unary (Ast.Addr_of, parse_unary st))
  | Token.Keyword "sizeof" ->
    advance st;
    if is_punct st "(" && looks_like_cast st then begin
      expect_punct st "(";
      let ty = parse_type st in
      expect_punct st ")";
      mk_expr st loc (Ast.Sizeof_type ty)
    end
    else mk_expr st loc (Ast.Sizeof_expr (parse_unary st))
  | Token.Keyword "new" ->
    advance st;
    let ty = parse_type st in
    if accept_punct st "[" then begin
      let size = parse_expr st in
      expect_punct st "]";
      mk_expr st loc (Ast.New { ty; array_size = Some size; init_args = [] })
    end
    else if accept_punct st "(" then begin
      let args = parse_call_args st in
      mk_expr st loc (Ast.New { ty; array_size = None; init_args = args })
    end
    else mk_expr st loc (Ast.New { ty; array_size = None; init_args = [] })
  | Token.Keyword "delete" ->
    advance st;
    let array = accept_punct st "[" in
    if array then expect_punct st "]";
    let target = parse_unary st in
    mk_expr st loc (Ast.Delete { array; target })
  | Token.Keyword "throw" ->
    advance st;
    if is_punct st ";" then mk_expr st loc (Ast.Throw None)
    else mk_expr st loc (Ast.Throw (Some (parse_assignment st)))
  | Token.Keyword (("static_cast" | "dynamic_cast" | "const_cast" | "reinterpret_cast") as kw) ->
    advance st;
    let kind =
      match kw with
      | "static_cast" -> Ast.Static_cast
      | "dynamic_cast" -> Ast.Dynamic_cast
      | "const_cast" -> Ast.Const_cast
      | _ -> Ast.Reinterpret_cast
    in
    expect_punct st "<";
    let ty = parse_type st in
    expect_punct st ">";
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    mk_expr st loc (Ast.Cpp_cast (kind, ty, e))
  | Token.Punct "(" when looks_like_cast st ->
    advance st;
    let ty = parse_type st in
    expect_punct st ")";
    let e = parse_unary st in
    mk_expr st loc (Ast.C_cast (ty, e))
  | _ -> parse_postfix st

and parse_call_args st =
  (* current token is just after '('; consumes the closing ')' *)
  let args = ref [] in
  if not (is_punct st ")") then begin
    args := [ parse_assignment st ];
    while accept_punct st "," do
      args := parse_assignment st :: !args
    done
  end;
  expect_punct st ")";
  List.rev !args

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let loc = cur_loc st in
    match cur_kind st with
    | Token.Punct "(" ->
      advance st;
      let args = parse_call_args st in
      e := mk_expr st loc (Ast.Call (!e, args))
    | Token.Punct "<<<" ->
      advance st;
      let grid = parse_assignment st in
      expect_punct st ",";
      let block = parse_assignment st in
      (* optional shared-mem / stream args are parsed and dropped *)
      while accept_punct st "," do
        ignore (parse_assignment st)
      done;
      expect_punct st ">>>";
      expect_punct st "(";
      let args = parse_call_args st in
      e := mk_expr st loc (Ast.Kernel_launch { kernel = !e; grid; block; args })
    | Token.Punct "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      e := mk_expr st loc (Ast.Index (!e, idx))
    | Token.Punct "." ->
      advance st;
      let field = expect_ident st in
      e := mk_expr st loc (Ast.Member { obj = !e; arrow = false; field })
    | Token.Punct "->" ->
      advance st;
      let field = expect_ident st in
      e := mk_expr st loc (Ast.Member { obj = !e; arrow = true; field })
    | Token.Punct "++" ->
      advance st;
      e := mk_expr st loc (Ast.Postfix (Ast.Post_inc, !e))
    | Token.Punct "--" ->
      advance st;
      e := mk_expr st loc (Ast.Postfix (Ast.Post_dec, !e))
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  let loc = cur_loc st in
  match cur_kind st with
  | Token.Int_lit (v, _) -> advance st; mk_expr st loc (Ast.Int_const v)
  | Token.Float_lit (v, _) -> advance st; mk_expr st loc (Ast.Float_const v)
  | Token.String_lit s -> advance st; mk_expr st loc (Ast.Str_const s)
  | Token.Char_lit c -> advance st; mk_expr st loc (Ast.Char_const c)
  | Token.Keyword "true" -> advance st; mk_expr st loc (Ast.Bool_const true)
  | Token.Keyword "false" -> advance st; mk_expr st loc (Ast.Bool_const false)
  | Token.Keyword "nullptr" -> advance st; mk_expr st loc Ast.Nullptr
  | Token.Keyword "this" -> advance st; mk_expr st loc (Ast.Id "this")
  | Token.Ident name ->
    advance st;
    let rec qualify acc =
      if is_punct st "::" then begin
        advance st;
        let seg = expect_ident st in
        qualify (acc ^ "::" ^ seg)
      end
      else acc
    in
    mk_expr st loc (Ast.Id (qualify name))
  | Token.Punct "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | _ -> err st (Printf.sprintf "expected expression, found %s" (Token.to_string (cur st)))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Parse declarators after a base type: [x = e, *p, arr[10]].  Consumes up
    to but not including the terminator. *)
let rec parse_declarators st base =
  let one () =
    let ty = parse_ptr_suffix st base in
    let loc = cur_loc st in
    let name = expect_ident st in
    let ty = ref ty in
    while is_punct st "[" do
      advance st;
      let size =
        match cur_kind st with
        | Token.Int_lit (v, _) -> advance st; Some (Int64.to_int v)
        | Token.Punct "]" -> None
        | _ ->
          (* non-constant array size: record as dynamic-extent array *)
          let _ = parse_expr st in
          None
      in
      expect_punct st "]";
      ty := Ast.Tarray (!ty, size)
    done;
    let init =
      if accept_punct st "=" then Some (parse_assignment st)
      else if is_punct st "(" then begin
        (* constructor-style init: [Foo x(1, 2)] — keep first arg as init *)
        advance st;
        let args = parse_call_args st in
        match args with [] -> None | a :: _ -> Some a
      end
      else if is_punct st "{" then begin
        advance st;
        let args = if is_punct st "}" then [] else
            let a = ref [ parse_assignment st ] in
            (while accept_punct st "," do a := parse_assignment st :: !a done; List.rev !a)
        in
        expect_punct st "}";
        match args with [] -> None | a :: _ -> Some a
      end
      else None
    in
    { Ast.v_name = name; v_type = !ty; v_init = init; v_loc = loc }
  in
  let first = one () in
  let rest = ref [ first ] in
  while accept_punct st "," do
    rest := one () :: !rest
  done;
  List.rev !rest

and parse_decl_stmt st =
  let quals = fresh_quals () in
  eat_qualifiers st quals;
  let base, _ = parse_base_type st in
  let base = if quals.q_const then Ast.Tconst base else base in
  let decls = parse_declarators st base in
  expect_punct st ";";
  decls

and parse_stmt st =
  let loc = cur_loc st in
  match cur_kind st with
  | Token.Punct "{" ->
    advance st;
    let stmts = ref [] in
    while not (is_punct st "}") do
      if (cur st).Token.kind = Token.Eof then err st "unterminated block";
      stmts := parse_stmt st :: !stmts
    done;
    expect_punct st "}";
    mk_stmt st loc (Ast.Sblock (List.rev !stmts))
  | Token.Punct ";" -> advance st; mk_stmt st loc Ast.Sempty
  | Token.Keyword "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_stmt st in
    let else_ = if accept_keyword st "else" then Some (parse_stmt st) else None in
    mk_stmt st loc (Ast.Sif { cond; then_; else_ })
  | Token.Keyword "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let body = parse_stmt st in
    mk_stmt st loc (Ast.Swhile (cond, body))
  | Token.Keyword "do" ->
    advance st;
    let body = parse_stmt st in
    expect_keyword st "while";
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    mk_stmt st loc (Ast.Sdo_while (body, cond))
  | Token.Keyword "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if is_punct st ";" then (advance st; Ast.Fi_empty)
      else if at_type_start st then begin
        let quals = fresh_quals () in
        eat_qualifiers st quals;
        let base, _ = parse_base_type st in
        let decls = parse_declarators st base in
        expect_punct st ";";
        Ast.Fi_decl decls
      end
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Ast.Fi_expr e
      end
    in
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    let update = if is_punct st ")" then None else Some (parse_expr st) in
    expect_punct st ")";
    let body = parse_stmt st in
    mk_stmt st loc (Ast.Sfor { init; cond; update; body })
  | Token.Keyword "switch" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    let body = parse_stmt st in
    mk_stmt st loc (Ast.Sswitch (e, body))
  | Token.Keyword "case" ->
    advance st;
    let e = parse_ternary st in
    expect_punct st ":";
    mk_stmt st loc (Ast.Scase e)
  | Token.Keyword "default" ->
    advance st;
    expect_punct st ":";
    mk_stmt st loc Ast.Sdefault
  | Token.Keyword "break" -> advance st; expect_punct st ";"; mk_stmt st loc Ast.Sbreak
  | Token.Keyword "continue" -> advance st; expect_punct st ";"; mk_stmt st loc Ast.Scontinue
  | Token.Keyword "return" ->
    advance st;
    let e = if is_punct st ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    mk_stmt st loc (Ast.Sreturn e)
  | Token.Keyword "goto" ->
    advance st;
    let label = expect_ident st in
    expect_punct st ";";
    mk_stmt st loc (Ast.Sgoto label)
  | Token.Keyword "try" ->
    advance st;
    let body = parse_stmt st in
    let catches = ref [] in
    while is_keyword st "catch" do
      advance st;
      expect_punct st "(";
      (* catch parameter: a type with optional name, or "..." *)
      let param_desc =
        if accept_punct st "..." then "..."
        else begin
          let ty = parse_type st in
          let name = match cur_kind st with
            | Token.Ident n -> advance st; " " ^ n
            | _ -> ""
          in
          Ast.type_to_string ty ^ name
        end
      in
      expect_punct st ")";
      let handler = parse_stmt st in
      catches := (param_desc, handler) :: !catches
    done;
    mk_stmt st loc (Ast.Stry { body; catches = List.rev !catches })
  | Token.Keyword "throw" ->
    let e = parse_expr st in
    expect_punct st ";";
    mk_stmt st loc (Ast.Sexpr e)
  | Token.Ident name when (match peek_kind_at st 1 with Token.Punct ":" -> true | _ -> false)
                          && not (is_type_name st name) ->
    (* goto label *)
    advance st;
    advance st;
    let inner = parse_stmt st in
    mk_stmt st loc (Ast.Slabel (name, inner))
  | _ when at_type_start st && not (is_keyword st "struct") && not (is_keyword st "class") ->
    let decls = parse_decl_stmt st in
    mk_stmt st loc (Ast.Sdecl decls)
  | _ ->
    let e = parse_expr st in
    expect_punct st ";";
    mk_stmt st loc (Ast.Sexpr e)

(* ------------------------------------------------------------------ *)
(* Top-level declarations                                              *)
(* ------------------------------------------------------------------ *)

let quals_to_func_quals q =
  List.concat
    [
      (if q.q_global_fn then [ Ast.Q_global ] else []);
      (if q.q_device then [ Ast.Q_device ] else []);
      (if q.q_host then [ Ast.Q_host ] else []);
      (if q.q_static then [ Ast.Q_static ] else []);
      (if q.q_inline then [ Ast.Q_inline ] else []);
      (if q.q_virtual then [ Ast.Q_virtual ] else []);
      (if q.q_extern then [ Ast.Q_extern ] else []);
    ]

let parse_params st =
  (* after '('; consumes ')' *)
  let params = ref [] in
  if not (is_punct st ")") then begin
    let one () =
      if accept_punct st "..." then { Ast.p_name = "..."; p_type = Ast.Tvoid }
      else begin
        let ty = parse_type st in
        let name =
          match cur_kind st with
          | Token.Ident n -> advance st; n
          | _ -> ""
        in
        let ty = ref ty in
        while is_punct st "[" do
          advance st;
          (match cur_kind st with
           | Token.Int_lit (v, _) -> advance st; ty := Ast.Tarray (!ty, Some (Int64.to_int v))
           | _ -> ty := Ast.Tarray (!ty, None));
          expect_punct st "]"
        done;
        (* default argument *)
        if accept_punct st "=" then ignore (parse_assignment st);
        { Ast.p_name = name; p_type = !ty }
      end
    in
    params := [ one () ];
    while accept_punct st "," do
      params := one () :: !params
    done
  end;
  expect_punct st ")";
  List.rev !params

(** Skip a constructor initializer list [: a_(x), b_(y)] up to '{'. *)
let skip_ctor_initializers st =
  if accept_punct st ":" then begin
    let rec go () =
      if is_punct st "{" || (cur st).Token.kind = Token.Eof then ()
      else begin
        advance st;
        go ()
      end
    in
    go ()
  end

let split_qualified name =
  match String.split_on_char ':' name with
  | [ simple ] -> ([], simple)
  | parts ->
    let parts = List.filter (fun s -> s <> "") parts in
    (match List.rev parts with
     | last :: scope_rev -> (List.rev scope_rev, last)
     | [] -> ([], name))

let rec parse_record st scope kind =
  (* after 'struct'/'class' keyword *)
  let loc = cur_loc st in
  let name = expect_ident st in
  register_type st name;
  if accept_punct st ";" then
    (* forward declaration *)
    Ast.Trecord { r_name = name; r_kind = kind; r_scope = scope; r_fields = []; r_methods = []; r_loc = loc }
  else begin
    (* optional base class *)
    if accept_punct st ":" then begin
      let rec skip_bases () =
        match cur_kind st with
        | Token.Punct "{" -> ()
        | _ -> advance st; skip_bases ()
      in
      skip_bases ()
    end;
    expect_punct st "{";
    let fields = ref [] in
    let methods = ref [] in
    let access = ref (match kind with Ast.Rstruct -> Ast.Pub | Ast.Rclass -> Ast.Priv) in
    while not (is_punct st "}") do
      if (cur st).Token.kind = Token.Eof then err st "unterminated record";
      match cur_kind st with
      | Token.Keyword "public" -> advance st; expect_punct st ":"; access := Ast.Pub
      | Token.Keyword "private" -> advance st; expect_punct st ":"; access := Ast.Priv
      | Token.Keyword "protected" -> advance st; expect_punct st ":"; access := Ast.Prot
      | Token.Ident ctor_name when ctor_name = name
                                   && (match peek_kind_at st 1 with Token.Punct "(" -> true | _ -> false) ->
        (* constructor *)
        let mloc = cur_loc st in
        advance st;
        expect_punct st "(";
        let params = parse_params st in
        skip_ctor_initializers st;
        let body =
          if is_punct st "{" then Some (parse_stmt st)
          else (expect_punct st ";"; None)
        in
        methods :=
          { Ast.f_name = name; f_scope = scope @ [ name ]; f_quals = [];
            f_ret = Ast.Tvoid; f_params = params; f_body = body; f_loc = mloc;
            f_end_line = (prev_loc st).Loc.line }
          :: !methods
      | Token.Punct "~" ->
        (* destructor *)
        let mloc = cur_loc st in
        advance st;
        let dname = expect_ident st in
        expect_punct st "(";
        let params = parse_params st in
        let body =
          if is_punct st "{" then Some (parse_stmt st)
          else (expect_punct st ";"; None)
        in
        methods :=
          { Ast.f_name = "~" ^ dname; f_scope = scope @ [ name ]; f_quals = [];
            f_ret = Ast.Tvoid; f_params = params; f_body = body; f_loc = mloc;
            f_end_line = (prev_loc st).Loc.line }
          :: !methods
      | _ ->
        let quals = fresh_quals () in
        eat_qualifiers st quals;
        let base, q2 = parse_base_type st in
        ignore q2;
        let base = if quals.q_const then Ast.Tconst base else base in
        let ty = parse_ptr_suffix st base in
        let mloc = cur_loc st in
        let mname = expect_ident st in
        if is_punct st "(" then begin
          advance st;
          let params = parse_params st in
          let _ = accept_keyword st "const" in
          let _ = accept_keyword st "override" in
          let body =
            if is_punct st "{" then Some (parse_stmt st)
            else if accept_punct st "=" then begin
              (* pure virtual "= 0" or "= default" *)
              (match cur_kind st with
               | Token.Int_lit _ | Token.Ident _ | Token.Keyword _ -> advance st
               | _ -> ());
              expect_punct st ";";
              None
            end
            else (expect_punct st ";"; None)
          in
          methods :=
            { Ast.f_name = mname; f_scope = scope @ [ name ];
              f_quals = quals_to_func_quals quals; f_ret = ty; f_params = params;
              f_body = body; f_loc = mloc; f_end_line = (prev_loc st).Loc.line }
            :: !methods
        end
        else begin
          let ty = ref ty in
          while is_punct st "[" do
            advance st;
            (match cur_kind st with
             | Token.Int_lit (v, _) -> advance st; ty := Ast.Tarray (!ty, Some (Int64.to_int v))
             | _ -> ty := Ast.Tarray (!ty, None));
            expect_punct st "]"
          done;
          let init = if accept_punct st "=" then Some (parse_assignment st) else None in
          fields := (!access, { Ast.v_name = mname; v_type = !ty; v_init = init; v_loc = mloc }) :: !fields;
          (* possible extra declarators *)
          while accept_punct st "," do
            let ty2 = parse_ptr_suffix st base in
            let n2loc = cur_loc st in
            let n2 = expect_ident st in
            let init2 = if accept_punct st "=" then Some (parse_assignment st) else None in
            fields := (!access, { Ast.v_name = n2; v_type = ty2; v_init = init2; v_loc = n2loc }) :: !fields
          done;
          expect_punct st ";"
        end
    done;
    expect_punct st "}";
    expect_punct st ";";
    Ast.Trecord
      { r_name = name; r_kind = kind; r_scope = scope;
        r_fields = List.rev !fields; r_methods = List.rev !methods; r_loc = loc }
  end

and parse_enum st =
  let loc = cur_loc st in
  (* optional "class" *)
  let _ = accept_keyword st "class" in
  let name = match cur_kind st with Token.Ident n -> advance st; n | _ -> "" in
  if name <> "" then register_type st name;
  expect_punct st "{";
  let items = ref [] in
  while not (is_punct st "}") do
    let iname = expect_ident st in
    let value =
      if accept_punct st "=" then
        match cur_kind st with
        | Token.Int_lit (v, _) -> advance st; Some (Int64.to_int v)
        | _ ->
          let _ = parse_ternary st in
          None
      else None
    in
    items := (iname, value) :: !items;
    ignore (accept_punct st ",")
  done;
  expect_punct st "}";
  expect_punct st ";";
  Ast.Tenum { en_name = name; en_items = List.rev !items; en_loc = loc }

and parse_top st scope =
  match cur_kind st with
  | Token.Keyword "namespace" ->
    advance st;
    let name = match cur_kind st with Token.Ident n -> advance st; n | _ -> "" in
    expect_punct st "{";
    let tops = ref [] in
    while not (is_punct st "}") do
      if (cur st).Token.kind = Token.Eof then err st "unterminated namespace";
      tops := parse_top_tolerant st (scope @ [ name ]) :: !tops
    done;
    expect_punct st "}";
    let _ = accept_punct st ";" in
    Ast.Tnamespace (name, List.rev !tops)
  | Token.Keyword "using" ->
    advance st;
    let _ = accept_keyword st "namespace" in
    let buf = Buffer.create 16 in
    while not (is_punct st ";") do
      Buffer.add_string buf (Token.spelling (cur_kind st));
      advance st
    done;
    expect_punct st ";";
    Ast.Tusing (Buffer.contents buf)
  | Token.Keyword "typedef" ->
    advance st;
    let ty = parse_type st in
    let name = expect_ident st in
    register_type st name;
    expect_punct st ";";
    Ast.Ttypedef (name, ty)
  | Token.Keyword "template" ->
    (* skip the template parameter list, then parse the declaration *)
    advance st;
    expect_punct st "<";
    let depth = ref 1 in
    while !depth > 0 do
      (match cur_kind st with
       | Token.Punct "<" -> incr depth
       | Token.Punct ">" -> decr depth
       | Token.Eof -> err st "unterminated template header"
       | _ -> ());
      advance st
    done;
    parse_top st scope
  | Token.Keyword "struct" when (match peek_kind_at st 2 with
                                 | Token.Punct ("{" | ";" | ":") -> true
                                 | _ -> false) ->
    advance st;
    parse_record st scope Ast.Rstruct
  | Token.Keyword "class" ->
    advance st;
    parse_record st scope Ast.Rclass
  | Token.Keyword "enum" -> advance st; parse_enum st
  | _ ->
    (* function or global variable *)
    let quals = fresh_quals () in
    eat_qualifiers st quals;
    let base, bquals = parse_base_type st in
    let merge a b =
      a.q_const <- a.q_const || b.q_const;
      a.q_static <- a.q_static || b.q_static;
      a.q_extern <- a.q_extern || b.q_extern;
      a.q_inline <- a.q_inline || b.q_inline;
      a.q_virtual <- a.q_virtual || b.q_virtual;
      a.q_global_fn <- a.q_global_fn || b.q_global_fn;
      a.q_device <- a.q_device || b.q_device;
      a.q_host <- a.q_host || b.q_host;
      a.q_shared <- a.q_shared || b.q_shared;
      a.q_constant <- a.q_constant || b.q_constant
    in
    merge quals bquals;
    let base = if quals.q_const then Ast.Tconst base else base in
    let ty = parse_ptr_suffix st base in
    let loc = cur_loc st in
    let raw_name =
      let first = expect_ident st in
      let rec qualify acc =
        if is_punct st "::" then begin
          advance st;
          let seg = expect_ident st in
          qualify (acc ^ "::" ^ seg)
        end
        else acc
      in
      qualify first
    in
    let extra_scope, simple_name = split_qualified raw_name in
    if is_punct st "(" then begin
      advance st;
      let params = parse_params st in
      let _ = accept_keyword st "const" in
      let _ = accept_keyword st "override" in
      let body =
        if is_punct st "{" then Some (parse_stmt st)
        else (expect_punct st ";"; None)
      in
      Ast.Tfunc
        { f_name = simple_name; f_scope = scope @ extra_scope;
          f_quals = quals_to_func_quals quals; f_ret = ty; f_params = params;
          f_body = body; f_loc = loc; f_end_line = (prev_loc st).Loc.line }
    end
    else begin
      let ty = ref ty in
      while is_punct st "[" do
        advance st;
        (match cur_kind st with
         | Token.Int_lit (v, _) -> advance st; ty := Ast.Tarray (!ty, Some (Int64.to_int v))
         | _ -> ty := Ast.Tarray (!ty, None));
        expect_punct st "]"
      done;
      let init = if accept_punct st "=" then Some (parse_assignment st) else None in
      (* extra declarators become additional globals; only the first is
         returned here, the rest are queued *)
      let decl = { Ast.v_name = simple_name; v_type = !ty; v_init = init; v_loc = loc } in
      let extras = ref [] in
      while accept_punct st "," do
        let ty2 = parse_ptr_suffix st base in
        let loc2 = cur_loc st in
        let n2 = expect_ident st in
        let init2 = if accept_punct st "=" then Some (parse_assignment st) else None in
        extras := { Ast.v_name = n2; v_type = ty2; v_init = init2; v_loc = loc2 } :: !extras
      done;
      expect_punct st ";";
      let mk d =
        { Ast.g_decl = d; g_static = quals.q_static;
          g_const = quals.q_const || (match d.Ast.v_type with Ast.Tconst _ -> true | _ -> false);
          g_extern = quals.q_extern; g_scope = scope @ extra_scope;
          g_device = quals.q_device || quals.q_constant }
      in
      (match List.rev !extras with
       | [] -> Ast.Tglobal (mk decl)
       | more ->
         (* represent multiple global declarators as a namespace-less group:
            main decl returned, extras appended through the pending queue *)
         st.pending_tops <-
           List.map (fun d -> Ast.Tglobal (mk d)) more @ st.pending_tops;
         Ast.Tglobal (mk decl))
    end

(** Tolerant wrapper: on parse error, skip to a balanced sync point. *)
and parse_top_tolerant st scope =
  let start = st.pos in
  try parse_top st scope
  with Parse_error (msg, loc) ->
    st.diags <- Printf.sprintf "%s: %s" (Loc.to_string loc) msg :: st.diags;
    st.pos <- start;
    let depth = ref 0 in
    let continue = ref true in
    while !continue do
      (match cur_kind st with
       | Token.Eof -> continue := false
       | Token.Punct "{" -> incr depth; advance st
       | Token.Punct "}" ->
         decr depth;
         advance st;
         if !depth <= 0 then begin
           let _ = accept_punct st ";" in
           continue := false
         end
       | Token.Punct ";" when !depth = 0 -> advance st; continue := false
       | _ -> advance st)
    done;
    Ast.Tunparsed { loc = cur_loc st; tokens_skipped = st.pos - start }

(** Parse a whole translation unit from source text.  [extra_types] seeds
    the type-name registry — the stand-in for types that would arrive via
    a header include. *)
let parse_file ?(extra_types = []) ~file source =
  let pre = Preproc.run ~file source in
  let lexed = Lexer.tokenize ~file pre.Preproc.text in
  let defines =
    List.filter_map
      (fun (_, d) ->
        match d with
        | Preproc.Define { name; body; function_like = false } when body <> "" ->
          Some (name, body)
        | _ -> None)
      pre.Preproc.directives
  in
  let tokens = Preproc.expand_macros ~defines lexed.Lexer.tokens in
  let st = make_state tokens in

  List.iter (register_type st) extra_types;
  let tops = ref [] in
  while (cur st).Token.kind <> Token.Eof do
    st.pending_tops <- [];
    let top = parse_top_tolerant st [] in
    tops := List.rev_append st.pending_tops (top :: !tops)
  done;
  {
    Ast.tu_file = file;
    tops = List.rev !tops;
    tokens;
    raw_source = source;
    comment_lines = lexed.Lexer.comment_lines;
    directives = pre.Preproc.directives;
    diags = List.rev st.diags @ lexed.Lexer.diagnostics @ pre.Preproc.diagnostics;
    n_exprs = st.n_eids;
    n_stmts = st.n_sids;
  }

(** Parse an expression in isolation (used by tests). *)
let parse_expr_string src =
  let lexed = Lexer.tokenize ~file:"<expr>" src in
  let st = make_state lexed.Lexer.tokens in
  parse_expr st

(** Parse a statement in isolation (used by tests). *)
let parse_stmt_string src =
  let lexed = Lexer.tokenize ~file:"<stmt>" src in
  let st = make_state lexed.Lexer.tokens in
  parse_stmt st
