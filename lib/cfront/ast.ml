(** Abstract syntax for the C/C++/CUDA subset.

    Every expression and statement node carries a unique (per translation
    unit) id, assigned by the parser; the coverage instrumenter keys its
    counters on these ids. *)

type ctype =
  | Tvoid
  | Tbool
  | Tchar
  | Tint of { unsigned : bool; width : [ `Short | `Int | `Long | `Longlong ] }
  | Tfloat
  | Tdouble
  | Tnamed of string  (** struct/class/typedef/enum name, possibly qualified *)
  | Ttemplate of string * ctype list  (** e.g. [vector<float>] *)
  | Tptr of ctype
  | Tref of ctype
  | Tarray of ctype * int option
  | Tconst of ctype
  | Tauto

let int_t = Tint { unsigned = false; width = `Int }

type unop =
  | Neg | Pos | Lnot | Bnot | Pre_inc | Pre_dec | Deref | Addr_of

type postop = Post_inc | Post_dec

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | Band | Bxor | Bor
  | Land | Lor
  | Comma

type assign_op =
  | A_eq | A_add | A_sub | A_mul | A_div | A_mod | A_shl | A_shr
  | A_and | A_or | A_xor

type cpp_cast = Static_cast | Dynamic_cast | Const_cast | Reinterpret_cast

type expr = { e : expr_desc; eloc : Loc.t; eid : int }

and expr_desc =
  | Int_const of int64
  | Float_const of float
  | Bool_const of bool
  | Str_const of string
  | Char_const of char
  | Nullptr
  | Id of string
  | Unary of unop * expr
  | Postfix of postop * expr
  | Binary of binop * expr * expr
  | Assign of assign_op * expr * expr
  | Ternary of expr * expr * expr
  | Call of expr * expr list
  | Kernel_launch of { kernel : expr; grid : expr; block : expr; args : expr list }
  | Index of expr * expr
  | Member of { obj : expr; arrow : bool; field : string }
  | C_cast of ctype * expr
  | Cpp_cast of cpp_cast * ctype * expr
  | Sizeof_type of ctype
  | Sizeof_expr of expr
  | New of { ty : ctype; array_size : expr option; init_args : expr list }
  | Delete of { array : bool; target : expr }
  | Throw of expr option

type var_decl = {
  v_name : string;
  v_type : ctype;
  v_init : expr option;
  v_loc : Loc.t;
}

type for_init =
  | Fi_decl of var_decl list
  | Fi_expr of expr
  | Fi_empty

type stmt = { s : stmt_desc; sloc : Loc.t; sid : int }

and stmt_desc =
  | Sexpr of expr
  | Sempty
  | Sdecl of var_decl list
  | Sblock of stmt list
  | Sif of { cond : expr; then_ : stmt; else_ : stmt option }
  | Swhile of expr * stmt
  | Sdo_while of stmt * expr
  | Sfor of { init : for_init; cond : expr option; update : expr option; body : stmt }
  | Sswitch of expr * stmt
  | Scase of expr
  | Sdefault
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sgoto of string
  | Slabel of string * stmt
  | Stry of { body : stmt; catches : (string * stmt) list }

type func_qual =
  | Q_global  (** CUDA [__global__] kernel *)
  | Q_device  (** CUDA [__device__] *)
  | Q_host
  | Q_static
  | Q_inline
  | Q_virtual
  | Q_extern

type param = { p_name : string; p_type : ctype }

type func = {
  f_name : string;  (** unqualified *)
  f_scope : string list;  (** enclosing namespaces / class names, outermost first *)
  f_quals : func_qual list;
  f_ret : ctype;
  f_params : param list;
  f_body : stmt option;  (** [None] for a prototype *)
  f_loc : Loc.t;
  f_end_line : int;
}

type record_kind = Rstruct | Rclass

type access = Pub | Priv | Prot

type record = {
  r_name : string;
  r_kind : record_kind;
  r_scope : string list;
  r_fields : (access * var_decl) list;
  r_methods : func list;
  r_loc : Loc.t;
}

type global_var = {
  g_decl : var_decl;
  g_static : bool;
  g_const : bool;
  g_extern : bool;
  g_scope : string list;
  g_device : bool;  (** CUDA [__device__]/[__constant__] variable *)
}

type enum_def = { en_name : string; en_items : (string * int option) list; en_loc : Loc.t }

type top =
  | Tfunc of func
  | Trecord of record
  | Tglobal of global_var
  | Ttypedef of string * ctype
  | Tenum of enum_def
  | Tnamespace of string * top list
  | Tusing of string
  | Tunparsed of { loc : Loc.t; tokens_skipped : int }

(** A parsed translation unit.  [tokens] (post-macro-expansion) and
    [raw_source] are retained because several checkers work at the token or
    text level rather than on the tree. *)
type tu = {
  tu_file : string;
  tops : top list;
  tokens : Token.t list;
  raw_source : string;
  comment_lines : int;
  directives : (int * Preproc.directive) list;
  diags : string list;
  n_exprs : int;  (** total expression nodes = max eid + 1 *)
  n_stmts : int;
}

(** Fully-qualified function name, e.g. ["perception::Detector::Resize"]. *)
let qualified_name (f : func) = String.concat "::" (f.f_scope @ [ f.f_name ])

let rec iter_tops f tops =
  List.iter
    (fun top ->
      f top;
      match top with Tnamespace (_, inner) -> iter_tops f inner | _ -> ())
    tops

(** All function definitions and prototypes in a TU, including methods and
    those nested in namespaces. *)
let functions_of_tu tu =
  let acc = ref [] in
  iter_tops
    (fun top ->
      match top with
      | Tfunc fn -> acc := fn :: !acc
      | Trecord r -> List.iter (fun m -> acc := m :: !acc) r.r_methods
      | _ -> ())
    tu.tops;
  List.rev !acc

let globals_of_tu tu =
  let acc = ref [] in
  iter_tops (fun top -> match top with Tglobal g -> acc := g :: !acc | _ -> ()) tu.tops;
  List.rev !acc

let records_of_tu tu =
  let acc = ref [] in
  iter_tops (fun top -> match top with Trecord r -> acc := r :: !acc | _ -> ()) tu.tops;
  List.rev !acc

(** Depth-first traversal of the statements of a function body. *)
let rec iter_stmts fstmt stmt =
  fstmt stmt;
  match stmt.s with
  | Sblock ss -> List.iter (iter_stmts fstmt) ss
  | Sif { then_; else_; _ } ->
    iter_stmts fstmt then_;
    Option.iter (iter_stmts fstmt) else_
  | Swhile (_, body) | Sdo_while (body, _) -> iter_stmts fstmt body
  | Sfor { body; _ } -> iter_stmts fstmt body
  | Sswitch (_, body) -> iter_stmts fstmt body
  | Slabel (_, body) -> iter_stmts fstmt body
  | Stry { body; catches } ->
    iter_stmts fstmt body;
    List.iter (fun (_, s) -> iter_stmts fstmt s) catches
  | Sexpr _ | Sempty | Sdecl _ | Scase _ | Sdefault | Sbreak | Scontinue
  | Sreturn _ | Sgoto _ -> ()

(** Depth-first traversal of every expression under a statement, including
    initializers and control conditions. *)
let rec iter_exprs_of_expr fexpr expr =
  fexpr expr;
  match expr.e with
  | Int_const _ | Float_const _ | Bool_const _ | Str_const _ | Char_const _
  | Nullptr | Id _ | Sizeof_type _ -> ()
  | Unary (_, e) | Postfix (_, e) | C_cast (_, e) | Cpp_cast (_, _, e)
  | Sizeof_expr e | Delete { target = e; _ } ->
    iter_exprs_of_expr fexpr e
  | Throw e -> Option.iter (iter_exprs_of_expr fexpr) e
  | Binary (_, a, b) | Assign (_, a, b) | Index (a, b) ->
    iter_exprs_of_expr fexpr a;
    iter_exprs_of_expr fexpr b
  | Ternary (a, b, c) ->
    iter_exprs_of_expr fexpr a;
    iter_exprs_of_expr fexpr b;
    iter_exprs_of_expr fexpr c
  | Call (f, args) ->
    iter_exprs_of_expr fexpr f;
    List.iter (iter_exprs_of_expr fexpr) args
  | Kernel_launch { kernel; grid; block; args } ->
    iter_exprs_of_expr fexpr kernel;
    iter_exprs_of_expr fexpr grid;
    iter_exprs_of_expr fexpr block;
    List.iter (iter_exprs_of_expr fexpr) args
  | Member { obj; _ } -> iter_exprs_of_expr fexpr obj
  | New { array_size; init_args; _ } ->
    Option.iter (iter_exprs_of_expr fexpr) array_size;
    List.iter (iter_exprs_of_expr fexpr) init_args

let iter_exprs_of_stmt fexpr stmt =
  let on_decls ds = List.iter (fun d -> Option.iter (iter_exprs_of_expr fexpr) d.v_init) ds in
  iter_stmts
    (fun s ->
      match s.s with
      | Sexpr e -> iter_exprs_of_expr fexpr e
      | Sdecl ds -> on_decls ds
      | Sif { cond; _ } -> iter_exprs_of_expr fexpr cond
      | Swhile (c, _) | Sdo_while (_, c) -> iter_exprs_of_expr fexpr c
      | Sfor { init; cond; update; _ } ->
        (match init with
         | Fi_decl ds -> on_decls ds
         | Fi_expr e -> iter_exprs_of_expr fexpr e
         | Fi_empty -> ());
        Option.iter (iter_exprs_of_expr fexpr) cond;
        Option.iter (iter_exprs_of_expr fexpr) update
      | Sswitch (e, _) | Scase e -> iter_exprs_of_expr fexpr e
      | Sreturn (Some e) -> iter_exprs_of_expr fexpr e
      | Sreturn None | Sempty | Sblock _ | Sdefault | Sbreak | Scontinue
      | Sgoto _ | Slabel _ | Stry _ -> ())
    stmt

let iter_exprs_of_func fexpr (fn : func) =
  Option.iter (iter_exprs_of_stmt fexpr) fn.f_body

(** Every name a function can bind locally — parameters first, then
    declared variables in statement order, each name once (first
    occurrence wins).  Because the interpreter's frame pushes bindings
    and never pops them, the newest binding of a name is the only one
    ever visible, so a compiler may assign each name a single local
    slot; this is the slot-index domain used by the coverage bytecode
    engine. *)
let local_names_of_func (fn : func) =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      acc := name :: !acc
    end
  in
  List.iter (fun p -> add p.p_name) fn.f_params;
  Option.iter
    (iter_stmts (fun s ->
         match s.s with
         | Sdecl ds -> List.iter (fun d -> add d.v_name) ds
         | Sfor { init = Fi_decl ds; _ } -> List.iter (fun d -> add d.v_name) ds
         | _ -> ()))
    fn.f_body;
  List.rev !acc

let rec type_to_string = function
  | Tvoid -> "void"
  | Tbool -> "bool"
  | Tchar -> "char"
  | Tint { unsigned; width } ->
    let base = match width with
      | `Short -> "short" | `Int -> "int" | `Long -> "long" | `Longlong -> "long long"
    in
    if unsigned then "unsigned " ^ base else base
  | Tfloat -> "float"
  | Tdouble -> "double"
  | Tnamed s -> s
  | Ttemplate (s, args) ->
    Printf.sprintf "%s<%s>" s (String.concat ", " (List.map type_to_string args))
  | Tptr t -> type_to_string t ^ "*"
  | Tref t -> type_to_string t ^ "&"
  | Tarray (t, Some n) -> Printf.sprintf "%s[%d]" (type_to_string t) n
  | Tarray (t, None) -> type_to_string t ^ "[]"
  | Tconst t -> "const " ^ type_to_string t
  | Tauto -> "auto"

let rec is_pointer_type = function
  | Tptr _ -> true
  | Tconst t -> is_pointer_type t
  | _ -> false
