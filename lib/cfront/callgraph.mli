(** Best-effort call graph over parsed functions, with per-site
    resolution accounting so whole-program analyses know how much of the
    graph is trustworthy.

    Call targets are resolved by name: an unqualified callee matches a
    function with that simple name, preferring one in the caller's
    scope — what a linkerless source-level tool can see. *)

module SM : Map.S with type key = string

type call_kind =
  | Direct  (** plain identifier call: [F(x)] *)
  | Method  (** member call: [obj.F(x)] / [p->F(x)], resolved by field name *)
  | Kernel  (** CUDA kernel launch: [F<<<g,b>>>(x)] *)
  | Indirect  (** callee is an arbitrary expression (function pointer) *)

type outcome =
  | Resolved of string  (** unique or scope-preferred definition *)
  | Guessed of string * string list
      (** legacy fallback for [Direct]/[Kernel] sites: edge to the
          first-defined candidate, full candidate list recorded *)
  | Ambiguous of string list  (** several candidates, no edge built *)
  | Unresolved  (** named callee with no defined candidate *)
  | Indirect_call  (** callee is not a name at all *)

type call_site = {
  cs_caller : string;  (** qualified name of the calling function *)
  cs_name : string;  (** callee as written; ["<expr>"] for indirect calls *)
  cs_kind : call_kind;
  cs_loc : Loc.t;
  cs_outcome : outcome;
}

type resolution = {
  total_sites : int;
  resolved : int;
  guessed : int;
  ambiguous : int;
  unresolved : int;
  indirect : int;
  kernel_launches : int;
  fnptr_taken : string list;
      (** qualified names of defined functions referenced outside a call
          position (address taken or passed as a value), sorted *)
}

type t = {
  nodes : string list;  (** qualified names of defined functions *)
  edges : (string * string) list;  (** caller -> callee, both qualified *)
  calls_of : string list SM.t;
  callers_of : string list SM.t;
  sites : call_site list;  (** every call site in traversal order *)
  resolution : resolution;
}

(** Raw callee names (unresolved) mentioned in a function body, including
    kernel launches and method-style calls. *)
val calls_in_body : Ast.func -> string list

val build : Ast.func list -> t

(** Resolved callees/callers of a qualified name (with multiplicity). *)
val callees : t -> string -> string list

val callers : t -> string -> string list

(** Distinct-callee / distinct-caller counts. *)
val fan_out : t -> string -> int

val fan_in : t -> string -> int

(** Tarjan's strongly-connected components, in topological order: a
    component appears before every component it calls into. *)
val sccs : t -> string list list

(** Members of multi-node SCCs plus direct self-callers, sorted. *)
val recursive_functions : t -> string list

(** Recursion cycles as witness lists: multi-node SCCs (mutual
    recursion) then singleton self-call cycles, in SCC order. *)
val recursion_cycles : t -> string list list
