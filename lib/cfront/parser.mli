(** Recursive-descent parser for the C/C++/CUDA subset.

    The parser is {b tolerant}: any top-level region it cannot parse is
    skipped (to the next balanced [;] or [}]) and recorded as
    {!Ast.Tunparsed} with a diagnostic — the behaviour of fuzzy industrial
    analyzers such as Lizard.  Inside function bodies parsing is strict; a
    failing body aborts only that definition.

    Expression and statement ids are globally unique across every
    translation unit parsed in the process, so coverage counters keyed on
    them never alias between files. *)

exception Parse_error of string * Loc.t

(** Parse one translation unit.

    [extra_types] seeds the type-name registry — the stand-in for type
    names that would arrive via header includes (see
    {!Cfront.Project.parse}, which derives them automatically for
    multi-file projects).  [file] is used for locations only; [source] is
    the raw text (the preprocessor runs internally). *)
val parse_file : ?extra_types:string list -> file:string -> string -> Ast.tu

(** Current [(next eid, next sid)] of the process-global id counters. *)
val id_state : unit -> int * int

(** Advance the global id counters by [eids]/[sids] without parsing —
    called when a cache hit replaces a parse, so the skipped parse still
    consumes its id range and every later parse starts from the same
    base a cold run would give it (collector fingerprints embed raw
    ids, and the cache's cold-vs-warm byte-identity contract covers
    them). *)
val reserve_ids : eids:int -> sids:int -> unit

(** Reset the global id counters.  Only cache-enabled pipelines do this
    (making id trajectories process-position-independent so artifacts
    recorded by one process are hits in the next); the cold no-cache
    oracle path never resets. *)
val reset_ids : unit -> unit

(** Pin the global id counters to an absolute base.  Cache-enabled
    coverage phases park their parses at fixed, well-separated bases so
    the artifacts keyed on those ids survive corpus edits; never called
    on the cold no-cache oracle path. *)
val set_ids : eids:int -> sids:int -> unit

(** Parse an expression in isolation (tests and tooling). *)
val parse_expr_string : string -> Ast.expr

(** Parse a statement in isolation (tests and tooling). *)
val parse_stmt_string : string -> Ast.stmt
