(** Persistent content-addressed artifact store — see cache.mli for the
    exactness contract.  Implementation notes:

    - One artifact per file, [<kind>-<key>.art], written atomically
      (temp + rename) so a killed process never leaves a half artifact
      under a valid name.
    - Every read re-validates the whole header (magic, salt, kind, key,
      length, payload digest, owner syntax) before [Marshal.from_string]
      runs, so flipped bits surface as a counted corrupt entry rather
      than a wrong-typed value handed to the analyzer.
    - Counters are atomics: lookups may come from any worker domain
      (parse fan-out, pipelined audit phases).  Telemetry counters
      [cache.hit/miss/store/corrupt/evict] mirror them in the work
      tier — deterministic for a deterministic workload.  The audit
      layer adds [cache.invalidate]: the size of the manifest-diff
      invalidation set (changed files + transitive dependents). *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let magic = "adcheck-cache/1"

(* Bump on any change to the marshaled layout of a cached artifact
   (AST, dataflow summaries, violations, bytecode, coverage outcomes). *)
let version_salt = "adcheck-cache/1 schema=1"

type t = {
  cache_dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  corrupt : int Atomic.t;
  invalidated : int Atomic.t;
  tmp_seq : int Atomic.t;
}

type store = t

type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  invalidated : int;
}

let dir t = t.cache_dir

let stats (t : t) : stats =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    corrupt = Atomic.get t.corrupt;
    invalidated = Atomic.get t.invalidated;
  }

let art_suffix = ".art"
let is_artifact name = Filename.check_suffix name art_suffix

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.is_directory d -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Wipe every artifact (schema change): the manifest and all .art files
   share the suffix, so one sweep resets the store to empty-but-valid. *)
let wipe_artifacts dirname =
  Array.iter
    (fun name ->
      if is_artifact name then
        try Sys.remove (Filename.concat dirname name) with Sys_error _ -> ())
    (Sys.readdir dirname)

let open_dir dirname =
  mkdir_p dirname;
  if not (Sys.is_directory dirname) then
    raise (Sys_error (dirname ^ ": not a directory"));
  let version_file = Filename.concat dirname "VERSION" in
  (if Sys.file_exists version_file then begin
     let prior = try String.trim (read_file version_file) with Sys_error _ -> "" in
     if prior <> version_salt then begin
       Util.Log.info
         "cache %s: version salt mismatch (%S, want %S); wiping artifacts"
         dirname prior version_salt;
       wipe_artifacts dirname;
       write_file version_file (version_salt ^ "\n")
     end
   end
   else write_file version_file (version_salt ^ "\n"));
  {
    cache_dir = dirname;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    corrupt = Atomic.make 0;
    invalidated = Atomic.make 0;
    tmp_seq = Atomic.make 0;
  }

let key ~kind parts =
  fnv1a64 (String.concat "\x00" (version_salt :: kind :: parts))

let art_path t ~kind ~key = Filename.concat t.cache_dir (kind ^ "-" ^ key ^ art_suffix)

(* Artifact layout:
     adcheck-cache/1\n
     <version salt>\n
     <kind> <key> <payload length> <payload digest> <owner>\n
     <payload bytes>
   The owner field runs to end of line (paths may contain spaces);
   "-" means no owner. *)
let render_artifact ~kind ~key ~owner payload =
  Printf.sprintf "%s\n%s\n%s %s %d %s %s\n%s" magic version_salt kind key
    (String.length payload) (fnv1a64 payload)
    (if owner = "" then "-" else owner)
    payload

(* Parse and validate; [Error reason] on any mismatch. *)
let parse_artifact ~kind ~key raw =
  let line_end from =
    match String.index_from_opt raw from '\n' with
    | Some i -> Ok i
    | None -> Error "truncated header"
  in
  let ( let* ) = Result.bind in
  let* e1 = line_end 0 in
  let* e2 = line_end (e1 + 1) in
  let* e3 = line_end (e2 + 1) in
  let l1 = String.sub raw 0 e1 in
  let l2 = String.sub raw (e1 + 1) (e2 - e1 - 1) in
  let l3 = String.sub raw (e2 + 1) (e3 - e2 - 1) in
  if l1 <> magic then Error "bad magic"
  else if l2 <> version_salt then Error "version salt mismatch"
  else
    match String.split_on_char ' ' l3 with
    | k :: ky :: len :: digest :: _owner_words ->
      if k <> kind then Error "kind mismatch"
      else if ky <> key then Error "key mismatch"
      else begin
        match int_of_string_opt len with
        | None -> Error "bad payload length"
        | Some n ->
          let payload_start = e3 + 1 in
          if String.length raw - payload_start <> n then
            Error "payload length mismatch"
          else
            let payload = String.sub raw payload_start n in
            if fnv1a64 payload <> digest then Error "payload digest mismatch"
            else Ok payload
      end
    | _ -> Error "bad header line"

(* Owner of an artifact file, reading only the header; None when the
   header itself is unreadable. *)
let owner_of_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let _magic = input_line ic in
        let _salt = input_line ic in
        let header = input_line ic in
        match String.split_on_char ' ' header with
        | _kind :: _key :: _len :: _digest :: rest when rest <> [] ->
          let owner = String.concat " " rest in
          if owner = "-" then None else Some owner
        | _ -> None)
  with Sys_error _ | End_of_file -> None

let find (t : t) ~kind ~key =
  let path = art_path t ~kind ~key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    Telemetry.incr "cache.miss";
    None
  end
  else begin
    let validated =
      match parse_artifact ~kind ~key (read_file path) with
      | Ok payload ->
        (* the digest matched, so from_string sees exactly the bytes
           to_string produced — but guard anyway: a schema change that
           escaped the salt bump must degrade to a miss, not an abort *)
        (try Ok (Marshal.from_string payload 0)
         with _ -> Error "unmarshal failure")
      | Error _ as e -> e
      | exception Sys_error e -> Error e
    in
    match validated with
    | Ok v ->
      Atomic.incr t.hits;
      Telemetry.incr "cache.hit";
      Some v
    | Error reason ->
      Util.Log.warn "cache %s: corrupt artifact %s (%s); recomputing"
        t.cache_dir (Filename.basename path) reason;
      Atomic.incr t.corrupt;
      Telemetry.incr "cache.corrupt";
      (try Sys.remove path with Sys_error _ -> ());
      Atomic.incr t.misses;
      Telemetry.incr "cache.miss";
      None
  end

let store (t : t) ?(owner = "") ~kind ~key v =
  match Marshal.to_string v [] with
  | exception Invalid_argument e ->
    (* abstract/closure value slipped into an artifact type: skip, the
       cache must never fail the computation it memoizes *)
    Util.Log.warn "cache %s: cannot serialize %s artifact (%s); skipping"
      t.cache_dir kind e
  | payload ->
    let path = art_path t ~kind ~key in
    let tmp =
      Printf.sprintf "%s.tmp.%d" path (Atomic.fetch_and_add t.tmp_seq 1)
    in
    (try
       write_file tmp (render_artifact ~kind ~key ~owner payload);
       Sys.rename tmp path;
       Atomic.incr t.stores;
       Telemetry.incr "cache.store"
     with Sys_error e ->
       Util.Log.warn "cache %s: cannot write %s artifact: %s" t.cache_dir kind e;
       (try Sys.remove tmp with Sys_error _ -> ()))

let memo t ?owner ~kind ~key f =
  match find t ~kind ~key with
  | Some v -> v
  | None ->
    let v = f () in
    store t ?owner ~kind ~key v;
    v

let remove_owned (t : t) paths =
  let removed = ref 0 in
  Array.iter
    (fun name ->
      if is_artifact name then begin
        let path = Filename.concat t.cache_dir name in
        match owner_of_file path with
        | Some owner when List.mem owner paths ->
          (try
             Sys.remove path;
             incr removed
           with Sys_error _ -> ())
        | _ -> ()
      end)
    (Sys.readdir t.cache_dir);
  ignore (Atomic.fetch_and_add t.invalidated !removed);
  Telemetry.add "cache.evict" !removed;
  !removed

(* ------------------------------------------------------------------ *)
(* Process-global store                                                 *)
(* ------------------------------------------------------------------ *)

let global_store : t option Atomic.t = Atomic.make None
let set_global c = Atomic.set global_store c
let global () = Atomic.get global_store

let with_global c f =
  set_global (Some c);
  Fun.protect ~finally:(fun () -> set_global None) f

(* ------------------------------------------------------------------ *)
(* Dependency manifest                                                  *)
(* ------------------------------------------------------------------ *)

module Manifest = struct
  type entry = { e_path : string; e_hash : string; e_deps : string list }
  type t = { entries : entry list }

  let make triples =
    {
      entries =
        List.sort
          (fun a b -> compare a.e_path b.e_path)
          (List.map
             (fun (p, h, deps) ->
               { e_path = p; e_hash = h; e_deps = List.sort_uniq compare deps })
             triples);
    }

  let changed ~old hashes =
    let old_tbl = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace old_tbl e.e_path e.e_hash) old.entries;
    let new_tbl = Hashtbl.create 64 in
    List.iter (fun (p, h) -> Hashtbl.replace new_tbl p h) hashes;
    let changed = ref [] in
    (* modified or added *)
    List.iter
      (fun (p, h) ->
        match Hashtbl.find_opt old_tbl p with
        | Some h' when h' = h -> ()
        | _ -> changed := p :: !changed)
      hashes;
    (* removed *)
    List.iter
      (fun e -> if not (Hashtbl.mem new_tbl e.e_path) then changed := e.e_path :: !changed)
      old.entries;
    List.sort_uniq compare !changed

  let dependents t seeds =
    (* reverse edges: dep -> the files that depend on it *)
    let rev = Hashtbl.create 64 in
    List.iter
      (fun e ->
        List.iter
          (fun d ->
            Hashtbl.replace rev d
              (e.e_path :: Option.value ~default:[] (Hashtbl.find_opt rev d)))
          e.e_deps)
      t.entries;
    let seen = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace seen s ()) seeds;
    let out = ref [] in
    let rec visit p =
      List.iter
        (fun q ->
          if not (Hashtbl.mem seen q) then begin
            Hashtbl.replace seen q ();
            out := q :: !out;
            visit q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt rev p))
    in
    List.iter visit seeds;
    List.sort_uniq compare !out

  let invalidated ~old hashes =
    let ch = changed ~old hashes in
    List.sort_uniq compare (ch @ dependents old ch)

  let manifest_key name = key ~kind:"manifest" [ name ]

  let save c ~name m = store c ~kind:"manifest" ~key:(manifest_key name) m
  let load c ~name : t option = find c ~kind:"manifest" ~key:(manifest_key name)
end
