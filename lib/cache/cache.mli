(** Persistent content-addressed artifact store.

    Analysis artifacts (parse trees, per-file dataflow fixpoints,
    per-rule MISRA results, compiled bytecode programs, coverage-phase
    outcomes) are keyed by a FNV-1a hash of their inputs — file path +
    content hash + whatever analysis context the producer folds in — and
    serialized with [Marshal] under a header that names the schema salt,
    the kind, the key, the payload length and digest, and an optional
    {e owner} path used for invalidation.  A lookup re-validates every
    header field and the payload digest; any mismatch (truncation,
    garbage, a salt from another tool version) is logged, counted as
    corrupt, deleted and reported as a miss, so a damaged cache can slow
    an audit down but never change its output.

    The exactness contract is the caller's: an artifact may only be
    served where recomputing it would produce byte-identical results.
    The differential harness in [test_cache_diff] locks that contract —
    cold, warm and incremental-after-edit runs must agree on report
    bytes, evidence journals, collector fingerprints and finding ids.

    The store is process-global by convention ([set_global]/[global]):
    analysis libraries consult [global ()] so that a single [--cache DIR]
    flag threads through every layer without signature churn. *)

(** 64-bit FNV-1a over the bytes of [s], rendered as 16 lowercase hex
    digits — the same discipline provenance uses for finding ids. *)
val fnv1a64 : string -> string

(** Schema salt baked into every artifact header and the store's VERSION
    file.  Bump it whenever the marshaled layout of any cached artifact
    changes; stores written under another salt are wiped on open. *)
val version_salt : string

type t

(** Alias for {!t}, usable inside {!Manifest} where [t] is shadowed. *)
type store = t

(** Monotone per-store counters (process lifetime, all domains). *)
type stats = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;  (** artifacts that failed header/digest validation *)
  invalidated : int;  (** artifacts removed by {!remove_owned} *)
}

(** Open (creating if needed) a store rooted at [dir].  A VERSION file
    carrying another {!version_salt} wipes all artifacts first.  Raises
    [Sys_error] if the directory cannot be created or written. *)
val open_dir : string -> t

val dir : t -> string
val stats : t -> stats

(** Derive an artifact key from the version salt, the artifact kind and
    the ordered input parts.  Equal inputs give equal keys across runs,
    jobs values and processes. *)
val key : kind:string -> string list -> string

(** [find t ~kind ~key] returns the stored artifact, or [None] on a miss
    or on a corrupt entry (which is deleted and counted).  The caller
    must read the value at the type it was stored at — pair every [find]
    with the [store] of the same [kind]. *)
val find : t -> kind:string -> key:string -> 'a option

(** Store an artifact (atomic write-then-rename).  [owner] names the
    source path whose edit invalidates the artifact; artifacts without
    an owner are self-validating through their key alone.  Serialization
    or filesystem failures are logged and skipped — the cache never
    fails the computation it memoizes. *)
val store : t -> ?owner:string -> kind:string -> key:string -> 'a -> unit

(** [memo t ?owner ~kind ~key f] is [find] else [f () |> store]. *)
val memo : t -> ?owner:string -> kind:string -> key:string -> (unit -> 'a) -> 'a

(** Remove every artifact owned by one of [paths]; returns the number
    removed (also counted as invalidated and added to the
    [cache.evict] telemetry counter).  Because keys are
    content-addressed this is hygiene, never correctness: callers sweep
    paths that left the tree for good, so that reverting an edit still
    finds the original artifacts warm. *)
val remove_owned : t -> string list -> int

(** Process-global store consulted by the analysis libraries. *)
val set_global : t option -> unit

val global : unit -> t option

(** Run [f] with the global store bound to [c], restoring [None] after. *)
val with_global : t -> (unit -> 'a) -> 'a

(** Dependency manifest: the previous run's view of the source tree —
    per-file content hashes plus the project-internal files each file
    depends on (includes and resolved call-graph callees) — so the next
    run can invalidate exactly the changed files and their transitive
    reverse-dependents before any artifact is consulted. *)
module Manifest : sig
  type entry = {
    e_path : string;
    e_hash : string;  (** {!fnv1a64} of the file content *)
    e_deps : string list;  (** project paths this file depends on *)
  }

  type t = { entries : entry list }

  (** Build from [(path, content_hash, deps)] triples; entries are
      stored sorted by path so equal trees give equal manifests. *)
  val make : (string * string * string list) list -> t

  (** Paths added, removed or content-changed between the old manifest
      and the new [(path, hash)] view.  Sorted. *)
  val changed : old:t -> (string * string) list -> string list

  (** Transitive reverse-dependents of [seeds] under [t]'s dependency
      edges (excluding the seeds themselves).  Sorted. *)
  val dependents : t -> string list -> string list

  (** [changed] plus their transitive reverse-dependents under the old
      edges — the exact set of files whose cached artifacts must be
      dropped before a warm run over the new tree.  Sorted. *)
  val invalidated : old:t -> (string * string) list -> string list

  val save : store -> name:string -> t -> unit
  val load : store -> name:string -> t option
end
