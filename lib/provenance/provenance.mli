(** Structured provenance for analysis results: the third observability
    pillar next to tracing (spans) and the flight recorder (metrics).

    Every finding an analysis produces — a MISRA violation, a dataflow
    fact, an interprocedural conclusion, a coverage gap, a metric
    threshold breach — is recorded here as a {!finding}: a stable
    content-derived identifier plus a {e witness chain}, the ordered
    list of concrete facts (source locations, dataflow facts, call
    chains, covering scenarios) that justify the finding.  The journal
    is what lets a reviewer audit the auditor: [adcheck --evidence]
    exports it as [adcheck-evidence/1] JSONL and [adcheck explain]
    renders one finding's why-chain with source context.

    {b Determinism.}  The journal is part of the work tier: its exported
    bytes must be identical at every [--jobs] value.  Two mechanisms
    guarantee that.  First, analyses running on pool workers record into
    a per-domain buffer ({!collect}) that the orchestrator absorbs in
    submission order ({!absorb}) — the same discipline PR 3/4/7 applied
    to telemetry counters and histograms.  Second, {!findings} returns
    the journal in a canonical order (sorted by content, deduplicated by
    id), so even entries recorded outside any buffer (for example by a
    pipelined audit phase) cannot perturb the export.  Recording the
    same finding twice is harmless by construction: equal content means
    equal id, and the journal deduplicates. *)

(** One link of a witness chain: a labelled fact, optionally anchored to
    a source location. *)
type step = {
  w_label : string;  (** e.g. "decl", "use", "call", "cfg", "scenario" *)
  w_loc : Cfront.Loc.t option;
  w_detail : string;
}

type finding = {
  f_id : string;  (** stable content-derived id, e.g. [F-1a2b3c4d5e6f7081] *)
  f_kind : string;  (** "misra" | "dataflow" | "interproc" | "coverage" | "metric" *)
  f_analysis : string;  (** rule id or analysis name *)
  f_loc : Cfront.Loc.t option;  (** primary location, when one exists *)
  f_message : string;
  f_witness : step list;  (** never empty for recorded findings *)
}

(** Build a step; [detail] is a format string. *)
val step : ?loc:Cfront.Loc.t -> string -> ('a, unit, string, step) format4 -> 'a

(** Build a finding; the id is derived from the full content (kind,
    analysis, location, message and every witness step), so equal
    content always yields an equal id across runs, jobs values and
    processes. *)
val make :
  kind:string ->
  analysis:string ->
  ?loc:Cfront.Loc.t ->
  message:string ->
  witness:step list ->
  unit ->
  finding

(* ------------------------------------------------------------------ *)
(* The journal sink                                                    *)
(* ------------------------------------------------------------------ *)

(** Append to the journal (the active per-domain buffer when one is
    installed, the process-global sink otherwise).  Also bumps the
    ["provenance.findings.<kind>"] telemetry counter. *)
val record : finding -> unit

(** [collect f] runs [f] with a fresh per-domain buffer installed and
    returns its findings in record order, without touching the global
    sink — the worker-side half of the deterministic merge.  Buffers
    nest: an inner [collect] shadows the outer one. *)
val collect : (unit -> 'a) -> 'a * finding list

(** Feed collected findings into the active sink (outer buffer or the
    global journal), in order — the orchestrator-side half. *)
val absorb : finding list -> unit

(** Clear the global journal (buffers are unaffected). *)
val reset : unit -> unit

(** The journal in canonical order: sorted by (kind, analysis, location,
    message, id), deduplicated by id.  This is the export order. *)
val findings : unit -> finding list

(** Look up by exact id, or by a unique id prefix of at least 4
    characters.  [Error] explains the failure (unknown / ambiguous). *)
val find : string -> (finding, string) result

(* ------------------------------------------------------------------ *)
(* adcheck-evidence/1                                                  *)
(* ------------------------------------------------------------------ *)

(** The journal as [adcheck-evidence/1] JSONL: a header line carrying
    the schema and finding count, then one canonical JSON object per
    finding.  Byte-identical at every [--jobs] value under the tick
    clock. *)
val journal : unit -> string

(** Write {!journal} to [path].  @raise Sys_error as [open_out] does. *)
val write_journal : path:string -> unit -> unit

(** Render one finding's full why-chain as human-readable text.
    [source] maps a file path to its content; when it returns [Some],
    witness locations are shown with a source excerpt and caret. *)
val explain : ?source:(string -> string option) -> finding -> string
