(** Structured provenance journal.  See provenance.mli. *)

type step = {
  w_label : string;
  w_loc : Cfront.Loc.t option;
  w_detail : string;
}

type finding = {
  f_id : string;
  f_kind : string;
  f_analysis : string;
  f_loc : Cfront.Loc.t option;
  f_message : string;
  f_witness : step list;
}

let step ?loc label fmt =
  Printf.ksprintf (fun detail -> { w_label = label; w_loc = loc; w_detail = detail }) fmt

(* ------------------------------------------------------------------ *)
(* Content-derived ids                                                 *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the canonical serialization of the finding.  64-bit, so
   collisions are vanishingly unlikely at journal scale (tens of
   thousands of findings); ids are stable across runs, jobs values and
   processes because they depend on nothing but the content. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let loc_key = function
  | None -> "-"
  | Some l -> Cfront.Loc.to_string l

let canonical_content ~kind ~analysis ~loc ~message ~witness =
  let buf = Buffer.create 256 in
  Buffer.add_string buf kind;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf analysis;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (loc_key loc);
  Buffer.add_char buf '\x00';
  Buffer.add_string buf message;
  List.iter
    (fun s ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf s.w_label;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf (loc_key s.w_loc);
      Buffer.add_char buf '\x01';
      Buffer.add_string buf s.w_detail)
    witness;
  Buffer.contents buf

let make ~kind ~analysis ?loc ~message ~witness () =
  let id =
    Printf.sprintf "F-%016Lx"
      (fnv1a64 (canonical_content ~kind ~analysis ~loc ~message ~witness))
  in
  { f_id = id; f_kind = kind; f_analysis = analysis; f_loc = loc;
    f_message = message; f_witness = witness }

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let global_rev : finding list ref = ref []

(* Per-domain buffer, installed by [collect] around pool-worker task
   bodies so recording never contends on the global mutex and the
   orchestrator controls merge order (submission order), exactly like
   the telemetry counter buffers. *)
let local_buf : finding list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record f =
  Telemetry.incr ("provenance.findings." ^ f.f_kind);
  match Domain.DLS.get local_buf with
  | Some buf -> buf := f :: !buf
  | None -> locked (fun () -> global_rev := f :: !global_rev)

let collect f =
  let prev = Domain.DLS.get local_buf in
  let buf = ref [] in
  Domain.DLS.set local_buf (Some buf);
  let finish () = Domain.DLS.set local_buf prev in
  match f () with
  | v ->
    finish ();
    (v, List.rev !buf)
  | exception e ->
    finish ();
    raise e

let absorb fs =
  match Domain.DLS.get local_buf with
  | Some buf -> List.iter (fun f -> buf := f :: !buf) fs
  | None -> locked (fun () -> List.iter (fun f -> global_rev := f :: !global_rev) fs)

let reset () = locked (fun () -> global_rev := [])

(* Canonical journal order: content-sorted, deduplicated by id.  The
   sort key starts with the human-meaningful fields so the journal reads
   grouped by kind and analysis; the id tiebreak makes the order total.
   Dedup by id is sound because the id is derived from the full content:
   equal id means equal finding (hash collisions aside). *)
let compare_findings a b =
  let key f =
    (f.f_kind, f.f_analysis, loc_key f.f_loc, f.f_message, f.f_id)
  in
  compare (key a) (key b)

let findings () =
  let all = locked (fun () -> List.rev !global_rev) in
  let sorted = List.sort compare_findings all in
  let seen = Hashtbl.create 256 in
  List.filter
    (fun f ->
      if Hashtbl.mem seen f.f_id then false
      else begin
        Hashtbl.add seen f.f_id ();
        true
      end)
    sorted

let find id =
  let fs = findings () in
  match List.find_opt (fun f -> f.f_id = id) fs with
  | Some f -> Ok f
  | None ->
    if String.length id < 4 then
      Error (Printf.sprintf "unknown finding id %s (prefixes need >= 4 characters)" id)
    else begin
      let matches =
        List.filter
          (fun f ->
            String.length f.f_id >= String.length id
            && String.sub f.f_id 0 (String.length id) = id)
          fs
      in
      match matches with
      | [ f ] -> Ok f
      | [] -> Error (Printf.sprintf "unknown finding id %s" id)
      | _ :: _ ->
        Error
          (Printf.sprintf "ambiguous finding id prefix %s (%d matches)" id
             (List.length matches))
    end

(* ------------------------------------------------------------------ *)
(* adcheck-evidence/1                                                  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let loc_json = function
  | None -> "null"
  | Some l -> Printf.sprintf "\"%s\"" (json_escape (Cfront.Loc.to_string l))

let finding_json f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"id\":\"%s\",\"kind\":\"%s\",\"analysis\":\"%s\",\"loc\":%s,\"message\":\"%s\",\"witness\":["
       (json_escape f.f_id) (json_escape f.f_kind) (json_escape f.f_analysis)
       (loc_json f.f_loc) (json_escape f.f_message));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"label\":\"%s\",\"loc\":%s,\"detail\":\"%s\"}"
           (json_escape s.w_label) (loc_json s.w_loc) (json_escape s.w_detail)))
    f.f_witness;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let journal () =
  let fs = findings () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"adcheck-evidence/1\",\"findings\":%d}\n"
       (List.length fs));
  List.iter
    (fun f ->
      Buffer.add_string buf (finding_json f);
      Buffer.add_char buf '\n')
    fs;
  Buffer.contents buf

let write_journal ~path () =
  let oc = open_out path in
  output_string oc (journal ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Human-readable why-chains                                           *)
(* ------------------------------------------------------------------ *)

let excerpt ~source (l : Cfront.Loc.t) =
  match source l.Cfront.Loc.file with
  | None -> None
  | Some content ->
    let lines = String.split_on_char '\n' content in
    let line = l.Cfront.Loc.line in
    (* one line of context before, the line itself, a caret column *)
    let rec nth i = function
      | [] -> None
      | x :: _ when i = 0 -> Some x
      | _ :: tl -> nth (i - 1) tl
    in
    (match nth (line - 1) lines with
     | None -> None
     | Some this ->
       let buf = Buffer.create 128 in
       (match nth (line - 2) lines with
        | Some prev when line > 1 ->
          Buffer.add_string buf (Printf.sprintf "      %4d | %s\n" (line - 1) prev)
        | _ -> ());
       Buffer.add_string buf (Printf.sprintf "      %4d | %s\n" line this);
       if l.Cfront.Loc.col > 0 then
         Buffer.add_string buf
           (Printf.sprintf "           | %s^\n" (String.make (l.Cfront.Loc.col - 1) ' '));
       Some (Buffer.contents buf))

let explain ?(source = fun _ -> None) f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "finding %s\n  kind:     %s\n  analysis: %s\n" f.f_id
       f.f_kind f.f_analysis);
  (match f.f_loc with
   | Some l -> Buffer.add_string buf (Printf.sprintf "  location: %s\n" (Cfront.Loc.to_string l))
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "  message:  %s\n" f.f_message);
  Buffer.add_string buf "  witness chain:\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "    %2d. [%s] %s%s\n" (i + 1) s.w_label s.w_detail
           (match s.w_loc with
            | Some l -> " @ " ^ Cfront.Loc.to_string l
            | None -> ""));
      match s.w_loc with
      | Some l -> Option.iter (Buffer.add_string buf) (excerpt ~source l)
      | None -> ())
    f.f_witness;
  Buffer.contents buf
