(** Generic worklist fixpoint solver over a join-semilattice.

    Clients supply the lattice and a per-block transfer function; the
    solver iterates to the least fixpoint in either direction.  Facts are
    reported in execution order: [before.(b)] holds at the first
    instruction of block [b] and [after.(b)] past its last, regardless of
    direction. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** least element; also the initial value of every non-boundary block *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  (** [solve ~cfg ~direction ~boundary ~transfer] computes the fixpoint.

      [boundary] is the fact at the entry block (forward) or the exit
      block (backward).  [transfer b fact] maps the fact across block [b]
      in execution order for [Forward] and against it for [Backward]. *)
  let solve ~(cfg : Cfg.t) ~direction ~(boundary : L.t)
      ~(transfer : int -> L.t -> L.t) =
    let n = Cfg.n_blocks cfg in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    (* predecessors in iteration order *)
    let sources =
      match direction with
      | Forward -> Array.map (fun blk -> blk.Cfg.preds) cfg.Cfg.blocks
      | Backward ->
        Array.map (fun blk -> List.map fst blk.Cfg.succs) cfg.Cfg.blocks
    in
    let boundary_block =
      match direction with Forward -> cfg.Cfg.entry | Backward -> cfg.Cfg.exit_
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue id =
      if not queued.(id) then begin
        queued.(id) <- true;
        Queue.add id queue
      end
    in
    for id = 0 to n - 1 do enqueue id done;
    let transfers = ref 0 in
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      queued.(id) <- false;
      Stdlib.incr transfers;
      let in_fact =
        List.fold_left
          (fun acc src -> L.join acc output.(src))
          (if id = boundary_block then boundary else L.bottom)
          sources.(id)
      in
      input.(id) <- in_fact;
      let out_fact = transfer id in_fact in
      if not (L.equal out_fact output.(id)) then begin
        output.(id) <- out_fact;
        let dependents =
          match direction with
          | Forward -> List.map fst cfg.Cfg.blocks.(id).Cfg.succs
          | Backward -> cfg.Cfg.blocks.(id).Cfg.preds
        in
        List.iter enqueue dependents
      end
    done;
    Telemetry.incr "dataflow.solves";
    Telemetry.add "dataflow.transfers" !transfers;
    Telemetry.max_gauge "dataflow.max_transfers_per_solve" (float_of_int !transfers);
    match direction with
    | Forward -> { before = input; after = output }
    | Backward -> { before = output; after = input }

  (** Like {!solve} but also returns the number of worklist steps taken —
    used by tests to check convergence behaviour on loops. *)
  let solve_counted ~cfg ~direction ~boundary ~transfer =
    let steps = ref 0 in
    let transfer id fact = incr steps; transfer id fact in
    let r = solve ~cfg ~direction ~boundary ~transfer in
    (r, !steps)
end
