(** Concrete dataflow analyses over {!Cfg}: reachability (unreachable
    code), definite assignment (uninitialized reads), liveness (dead
    stores) and reaching definitions with trivial constant folding
    (constant branch conditions).

    All four power MISRA rules 2.1/2.2/9.1 plus the DF-1/DF-2 extended
    rules and the [adcheck dataflow] report. *)

open Cfront

module SS = Set.Make (String)
module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Variable domains                                                    *)
(* ------------------------------------------------------------------ *)

let rec strip_const = function Ast.Tconst t -> strip_const t | t -> t

(* Locals whose uninitialized reads / dead stores are meaningful: scalar
   (or pointer) automatic variables.  Arrays, class-typed and reference
   locals have constructor/aliasing semantics and are exempt, matching
   the original Metrics.Uninit policy. *)
let tracked_type t =
  match strip_const t with
  | Ast.Tarray _ | Ast.Tnamed _ | Ast.Ttemplate _ | Ast.Tref _ | Ast.Tauto -> false
  | _ -> true

(** Declarations of tracked locals in the function: name -> decl loc
    (first declaration wins, name-level granularity as in the original
    syntactic analysis). *)
let tracked_decls (cfg : Cfg.t) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun blk ->
      List.iter
        (fun (instr : Cfg.instr) ->
          match instr.Cfg.i with
          | Cfg.Idecl d when tracked_type d.Ast.v_type ->
            if not (Hashtbl.mem tbl d.Ast.v_name) then
              Hashtbl.add tbl d.Ast.v_name d.Ast.v_loc
          | _ -> ())
        blk.Cfg.instrs)
    cfg.Cfg.blocks;
  tbl

let names l = List.map fst l

(* ------------------------------------------------------------------ *)
(* Definite assignment / may-be-uninitialized reads                    *)
(* ------------------------------------------------------------------ *)

type uninit_finding = {
  u_var : string;
  u_decl_loc : Loc.t;
  u_use_loc : Loc.t;
  u_function : string;
}

module VarSet = struct
  type t = SS.t

  let bottom = SS.empty
  let equal = SS.equal
  let join = SS.union
end

module VarSolver = Framework.Make (VarSet)

(* The fact is the set of tracked locals that are declared but possibly
   not yet assigned (the dual of definite assignment; union join makes
   "maybe uninitialized" a may-property, so a variable assigned on every
   path into a use is NOT in the fact there). *)
let uninit_transfer tracked (blk : Cfg.block) fact =
  List.fold_left
    (fun fact (instr : Cfg.instr) ->
      let fact =
        (* assignments and address-taking initialize *)
        List.fold_left
          (fun fact n -> SS.remove n fact)
          fact
          (names (Cfg.defs_of_instr instr) @ Cfg.addr_taken_of_instr instr)
      in
      match instr.Cfg.i with
      | Cfg.Idecl d when d.Ast.v_init = None && Hashtbl.mem tracked d.Ast.v_name ->
        SS.add d.Ast.v_name fact
      | _ -> fact)
    fact blk.Cfg.instrs

(** Flow-sensitive uninitialized-read findings, one per variable (the
    earliest use in source order). *)
let uninit_reads (cfg : Cfg.t) =
  let tracked = tracked_decls cfg in
  if Hashtbl.length tracked = 0 then []
  else begin
    let result =
      VarSolver.solve ~cfg ~direction:Framework.Forward ~boundary:SS.empty
        ~transfer:(fun bid fact ->
          uninit_transfer tracked cfg.Cfg.blocks.(bid) fact)
    in
    let fname = Ast.qualified_name cfg.Cfg.func in
    let candidates = ref [] in
    Array.iter
      (fun (blk : Cfg.block) ->
        let fact = ref result.VarSolver.before.(blk.Cfg.bid) in
        List.iter
          (fun (instr : Cfg.instr) ->
            List.iter
              (fun (n, use_loc) ->
                if SS.mem n !fact then
                  match Hashtbl.find_opt tracked n with
                  | Some decl_loc ->
                    candidates :=
                      { u_var = n; u_decl_loc = decl_loc; u_use_loc = use_loc;
                        u_function = fname }
                      :: !candidates
                  | None -> ())
              (Cfg.uses_of_instr instr);
            fact := uninit_transfer tracked { blk with Cfg.instrs = [ instr ] } !fact)
          blk.Cfg.instrs)
      cfg.Cfg.blocks;
    (* earliest use per variable, in source order *)
    let by_pos a b =
      compare
        (a.u_use_loc.Loc.line, a.u_use_loc.Loc.col, a.u_var)
        (b.u_use_loc.Loc.line, b.u_use_loc.Loc.col, b.u_var)
    in
    let sorted = List.sort by_pos (List.rev !candidates) in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.u_var then false
        else begin
          Hashtbl.add seen f.u_var ();
          true
        end)
      sorted
  end

(* ------------------------------------------------------------------ *)
(* Liveness and dead stores                                            *)
(* ------------------------------------------------------------------ *)

type store_kind = Sassign | Sdecl_init

type dead_store = {
  d_var : string;
  d_loc : Loc.t;
  d_kind : store_kind;
  d_function : string;
}

(* live := (live \ defs) ∪ uses; address-taken variables escape and are
   treated as used. *)
let live_transfer (blk : Cfg.block) fact =
  List.fold_left
    (fun fact (instr : Cfg.instr) ->
      let fact =
        List.fold_left
          (fun fact n -> SS.remove n fact)
          fact
          (names (Cfg.defs_of_instr instr))
      in
      List.fold_left
        (fun fact n -> SS.add n fact)
        fact
        (names (Cfg.uses_of_instr instr) @ Cfg.addr_taken_of_instr instr))
    fact (List.rev blk.Cfg.instrs)

(** Live variables at block boundaries. *)
let liveness (cfg : Cfg.t) =
  VarSolver.solve ~cfg ~direction:Framework.Backward ~boundary:SS.empty
    ~transfer:(fun bid fact -> live_transfer cfg.Cfg.blocks.(bid) fact)

(* The store a single instruction performs on a simple local, if any:
   a top-level assignment statement or a declaration initializer. *)
let store_of_instr (instr : Cfg.instr) =
  match instr.Cfg.i with
  | Cfg.Iexpr { e = Ast.Assign (_, { e = Ast.Id n; _ }, _); _ } ->
    Some (n, instr.Cfg.iloc, Sassign)
  | Cfg.Idecl ({ Ast.v_init = Some _; _ } as d) ->
    Some (d.Ast.v_name, d.Ast.v_loc, Sdecl_init)
  | _ -> None

(** Stores whose value is never read on any path: flow-sensitive dead
    stores.  Only tracked locals are considered; variables whose address
    is taken anywhere in the function are exempt (the store may be
    observed through the pointer), as are stores in unreachable blocks
    (those are rule 2.1's findings, not dead stores). *)
let dead_stores ?(include_decl_init = true) (cfg : Cfg.t) =
  let tracked = tracked_decls cfg in
  if Hashtbl.length tracked = 0 then []
  else begin
    let escaped = SS.of_list (Cfg.addr_taken_of_cfg cfg) in
    let live = liveness cfg in
    let reach = Cfg.reachable cfg in
    let fname = Ast.qualified_name cfg.Cfg.func in
    let acc = ref [] in
    Array.iter
      (fun (blk : Cfg.block) ->
        if reach.(blk.Cfg.bid) then begin
          (* walk the block backwards tracking liveness per instruction *)
          let fact = ref live.VarSolver.after.(blk.Cfg.bid) in
          List.iter
            (fun (instr : Cfg.instr) ->
              (match store_of_instr instr with
               | Some (n, loc, kind)
                 when Hashtbl.mem tracked n
                      && (not (SS.mem n escaped))
                      && (not (SS.mem n !fact))
                      && (include_decl_init || kind = Sassign) ->
                 acc := { d_var = n; d_loc = loc; d_kind = kind; d_function = fname }
                        :: !acc
               | _ -> ());
              fact := live_transfer { blk with Cfg.instrs = [ instr ] } !fact)
            (List.rev blk.Cfg.instrs)
        end)
      cfg.Cfg.blocks;
    List.sort
      (fun a b ->
        compare
          (a.d_loc.Loc.line, a.d_loc.Loc.col, a.d_var)
          (b.d_loc.Loc.line, b.d_loc.Loc.col, b.d_var))
      !acc
  end

(* ------------------------------------------------------------------ *)
(* Reaching definitions and trivial constant propagation               *)
(* ------------------------------------------------------------------ *)

type def_site = {
  site_id : int;
  site_var : string;
  site_const : int64 option;  (** [Some c] when the definition assigns a
                                  compile-time literal constant *)
}

(* Syntactic constant folding of side-effect-free expressions. *)
let rec fold_literal (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int_const n -> Some n
  | Ast.Bool_const b -> Some (if b then 1L else 0L)
  | Ast.Char_const c -> Some (Int64.of_int (Char.code c))
  | Ast.Unary (op, a) -> (
      match (op, fold_literal a) with
      | Ast.Neg, Some n -> Some (Int64.neg n)
      | Ast.Pos, Some n -> Some n
      | Ast.Lnot, Some n -> Some (if n = 0L then 1L else 0L)
      | Ast.Bnot, Some n -> Some (Int64.lognot n)
      | _ -> None)
  | Ast.Binary (op, a, b) -> (
      match (fold_literal a, fold_literal b) with
      | Some x, Some y -> fold_binop op x y
      | _ -> None)
  | Ast.Ternary (c, a, b) -> (
      match fold_literal c with
      | Some 0L -> fold_literal b
      | Some _ -> fold_literal a
      | None -> None)
  | Ast.C_cast (t, a) | Ast.Cpp_cast (_, t, a) ->
    (match strip_const t with
     | Ast.Tint _ | Ast.Tbool | Ast.Tchar -> fold_literal a
     | _ -> None)
  | _ -> None

and fold_binop op x y =
  let bool_ b = Some (if b then 1L else 0L) in
  match op with
  | Ast.Add -> Some (Int64.add x y)
  | Ast.Sub -> Some (Int64.sub x y)
  | Ast.Mul -> Some (Int64.mul x y)
  | Ast.Div -> if y = 0L then None else Some (Int64.div x y)
  | Ast.Mod -> if y = 0L then None else Some (Int64.rem x y)
  | Ast.Shl -> if y < 0L || y > 62L then None else Some (Int64.shift_left x (Int64.to_int y))
  | Ast.Shr -> if y < 0L || y > 62L then None else Some (Int64.shift_right x (Int64.to_int y))
  | Ast.Lt -> bool_ (x < y)
  | Ast.Gt -> bool_ (x > y)
  | Ast.Le -> bool_ (x <= y)
  | Ast.Ge -> bool_ (x >= y)
  | Ast.Eq -> bool_ (x = y)
  | Ast.Ne -> bool_ (x <> y)
  | Ast.Band -> Some (Int64.logand x y)
  | Ast.Bor -> Some (Int64.logor x y)
  | Ast.Bxor -> Some (Int64.logxor x y)
  | Ast.Land -> bool_ (x <> 0L && y <> 0L)
  | Ast.Lor -> bool_ (x <> 0L || y <> 0L)
  | Ast.Comma -> None

module DefSet = struct
  type t = IS.t

  let bottom = IS.empty
  let equal = IS.equal
  let join = IS.union
end

module DefSolver = Framework.Make (DefSet)

(** Reaching definitions: per-instruction def sites keyed by a dense id,
    with the standard gen/kill fixpoint.  Returns the site table, a map
    var -> all site ids, and the solver result. *)
let reaching_definitions (cfg : Cfg.t) =
  let gen = Hashtbl.create 32 in  (* (bid, instr index) -> def_site list *)
  let all_sites = ref [] in
  let sites_of_var = Hashtbl.create 16 in
  let next = ref 0 in
  let new_site var const =
    let s = { site_id = !next; site_var = var; site_const = const } in
    incr next;
    Hashtbl.replace sites_of_var var
      (IS.add s.site_id
         (Option.value ~default:IS.empty (Hashtbl.find_opt sites_of_var var)));
    all_sites := s :: !all_sites;
    s
  in
  let const_of_instr (instr : Cfg.instr) var =
    match instr.Cfg.i with
    | Cfg.Idecl d when d.Ast.v_name = var ->
      Option.bind d.Ast.v_init fold_literal
    | Cfg.Iexpr { e = Ast.Assign (Ast.A_eq, { e = Ast.Id n; _ }, rhs); _ }
      when n = var ->
      fold_literal rhs
    | _ -> None
  in
  Array.iter
    (fun (blk : Cfg.block) ->
      List.iteri
        (fun idx (instr : Cfg.instr) ->
          let defined =
            names (Cfg.defs_of_instr instr)
            @ Cfg.addr_taken_of_instr instr
            @ (match instr.Cfg.i with
               | Cfg.Idecl d when d.Ast.v_init = None -> [ d.Ast.v_name ]
               | _ -> [])
          in
          match List.sort_uniq compare defined with
          | [] -> ()
          | vars ->
            Hashtbl.replace gen (blk.Cfg.bid, idx)
              (List.map (fun var -> new_site var (const_of_instr instr var)) vars))
        blk.Cfg.instrs)
    cfg.Cfg.blocks;
  let site_ids_of_var var =
    Option.value ~default:IS.empty (Hashtbl.find_opt sites_of_var var)
  in
  let site_by_id = Array.make (Stdlib.max 1 !next) None in
  List.iter (fun s -> site_by_id.(s.site_id) <- Some s) !all_sites;
  let transfer_instr bid idx (_ : Cfg.instr) fact =
    match Hashtbl.find_opt gen (bid, idx) with
    | None | Some [] -> fact
    | Some this ->
      (* strong kill: every older definition of the same variables dies *)
      let killed =
        List.fold_left (fun acc s -> IS.union acc (site_ids_of_var s.site_var)) IS.empty this
      in
      let fact = IS.diff fact killed in
      List.fold_left (fun fact s -> IS.add s.site_id fact) fact this
  in
  let transfer_block bid fact =
    let blk = cfg.Cfg.blocks.(bid) in
    List.fold_left
      (fun (idx, fact) instr -> (idx + 1, transfer_instr bid idx instr fact))
      (0, fact) blk.Cfg.instrs
    |> snd
  in
  let result =
    DefSolver.solve ~cfg ~direction:Framework.Forward ~boundary:IS.empty
      ~transfer:transfer_block
  in
  (result, site_by_id, site_ids_of_var, transfer_instr)

type const_cond = {
  c_loc : Loc.t;
  c_value : bool;  (** the condition is always this *)
  c_origin : Cfg.cond_origin;
  c_function : string;
  c_propagated : bool;  (** required reaching-definition propagation, i.e.
                            the condition is not itself a literal *)
}

(** Branch conditions that fold to a compile-time constant, using the
    reaching definitions of each variable: a variable folds when every
    definition reaching the use assigns the same literal.  Only locals
    declared in the function whose address is never taken participate
    (anything else can change behind the analysis's back). *)
let constant_conditions (cfg : Cfg.t) =
  let tracked = tracked_decls cfg in
  let escaped = SS.of_list (Cfg.addr_taken_of_cfg cfg) in
  let result, site_by_id, site_ids_of_var, transfer_instr =
    reaching_definitions cfg
  in
  let reach = Cfg.reachable cfg in
  let fname = Ast.qualified_name cfg.Cfg.func in
  let acc = ref [] in
  Array.iter
    (fun (blk : Cfg.block) ->
      if reach.(blk.Cfg.bid) then begin
        let fact = ref result.DefSolver.before.(blk.Cfg.bid) in
        List.iteri
          (fun idx (instr : Cfg.instr) ->
            (match instr.Cfg.i with
             | Cfg.Icond (e, origin) ->
               let env var =
                 if
                   Hashtbl.mem tracked var && not (SS.mem var escaped)
                 then begin
                   let reaching = IS.inter !fact (site_ids_of_var var) in
                   if IS.is_empty reaching then None
                   else
                     IS.fold
                       (fun id acc ->
                         match (acc, site_by_id.(id)) with
                         | `Start, Some { site_const = Some c; _ } -> `Const c
                         | `Const c, Some { site_const = Some c'; _ } when c = c' ->
                           `Const c
                         | _ -> `Varies)
                       reaching `Start
                     |> function `Const c -> Some c | _ -> None
                 end
                 else None
               in
               let rec fold (e : Ast.expr) =
                 match e.Ast.e with
                 | Ast.Id x -> env x
                 | Ast.Unary (op, a) -> (
                     match (op, fold a) with
                     | Ast.Neg, Some n -> Some (Int64.neg n)
                     | Ast.Pos, Some n -> Some n
                     | Ast.Lnot, Some n -> Some (if n = 0L then 1L else 0L)
                     | Ast.Bnot, Some n -> Some (Int64.lognot n)
                     | _ -> None)
                 | Ast.Binary (op, a, b) -> (
                     match (fold a, fold b) with
                     | Some x, Some y -> fold_binop op x y
                     | _ -> None)
                 | _ -> fold_literal e
               in
               let literal = fold_literal e <> None in
               (match fold e with
                | Some c ->
                  acc :=
                    { c_loc = e.Ast.eloc; c_value = c <> 0L; c_origin = origin;
                      c_function = fname; c_propagated = not literal }
                    :: !acc
                | None -> ())
             | _ -> ());
            fact := transfer_instr blk.Cfg.bid idx instr !fact)
          blk.Cfg.instrs
      end)
    cfg.Cfg.blocks;
  List.sort
    (fun a b ->
      compare (a.c_loc.Loc.line, a.c_loc.Loc.col) (b.c_loc.Loc.line, b.c_loc.Loc.col))
    !acc

(* ------------------------------------------------------------------ *)
(* Unreachable code regions                                            *)
(* ------------------------------------------------------------------ *)

(** Contiguous regions of unreachable blocks that contain at least one
    instruction, reported by the source location of the first instruction
    in the region.  One region yields one finding, however many blocks
    the dead construct lowered to. *)
let unreachable_regions (cfg : Cfg.t) =
  let reach = Cfg.reachable cfg in
  let n = Cfg.n_blocks cfg in
  let visited = Array.make n false in
  let regions = ref [] in
  let explore root =
    let first = ref None in
    let rec go id =
      if (not visited.(id)) && not reach.(id) then begin
        visited.(id) <- true;
        (match (!first, Cfg.first_loc cfg.Cfg.blocks.(id)) with
         | None, Some loc -> first := Some loc
         | _ -> ());
        List.iter (fun (dst, _) -> go dst) cfg.Cfg.blocks.(id).Cfg.succs
      end
    in
    go root;
    Option.iter (fun loc -> regions := loc :: !regions) !first
  in
  (* region roots: unreachable blocks with no unreachable predecessor *)
  Array.iter
    (fun (blk : Cfg.block) ->
      if
        (not reach.(blk.Cfg.bid))
        && (not visited.(blk.Cfg.bid))
        && not (List.exists (fun p -> not reach.(p)) blk.Cfg.preds)
      then explore blk.Cfg.bid)
    cfg.Cfg.blocks;
  (* safety net for pred-cycles of dead blocks with no root *)
  Array.iter
    (fun (blk : Cfg.block) ->
      if (not reach.(blk.Cfg.bid)) && not visited.(blk.Cfg.bid) then
        explore blk.Cfg.bid)
    cfg.Cfg.blocks;
  List.sort
    (fun (a : Loc.t) (b : Loc.t) -> compare (a.Loc.line, a.Loc.col) (b.Loc.line, b.Loc.col))
    !regions

(* ------------------------------------------------------------------ *)
(* Per-function summary                                                *)
(* ------------------------------------------------------------------ *)

type func_summary = {
  s_function : string;
  s_blocks : int;
  s_edges : int;
  s_unreachable : int;  (** unreachable code regions *)
  s_dead_stores : int;
  s_uninit_reads : int;
  s_const_conditions : int;  (** propagated constants only *)
}

(* Journal every concrete fact the four analyses surface, each with the
   dataflow evidence that justifies it.  These are the raw facts; the
   DF-*/9.1 MISRA rules journal their own (kind "misra") findings on top
   of the subset they report. *)
let record_findings (fname : string) (cfg : Cfg.t)
    ~unreachable ~dead ~uninit ~consts =
  let blocks = Cfg.n_blocks cfg and edges = Cfg.n_edges cfg in
  List.iter
    (fun (loc : Loc.t) ->
      Provenance.record
        (Provenance.make ~kind:"dataflow" ~analysis:"unreachable-region" ~loc
           ~message:(Printf.sprintf "unreachable code region in %s" fname)
           ~witness:
             [
               Provenance.step ~loc "region" "first instruction of the dead region";
               Provenance.step "reachability"
                 "no path from entry reaches this block (CFG: %d blocks, %d edges)"
                 blocks edges;
             ]
           ()))
    unreachable;
  List.iter
    (fun (d : dead_store) ->
      let what =
        match d.d_kind with Sassign -> "value assigned" | Sdecl_init -> "initializer"
      in
      Provenance.record
        (Provenance.make ~kind:"dataflow" ~analysis:"dead-store" ~loc:d.d_loc
           ~message:
             (Printf.sprintf "%s to %s is never read in %s" what d.d_var fname)
           ~witness:
             [
               Provenance.step ~loc:d.d_loc "store" "%s to %s" what d.d_var;
               Provenance.step "liveness"
                 "%s is not live after this store on any path (CFG: %d blocks, %d edges)"
                 d.d_var blocks edges;
             ]
           ()))
    dead;
  List.iter
    (fun (u : uninit_finding) ->
      Provenance.record
        (Provenance.make ~kind:"dataflow" ~analysis:"uninit-read"
           ~loc:u.u_use_loc
           ~message:
             (Printf.sprintf "%s may be read uninitialized in %s" u.u_var fname)
           ~witness:
             [
               Provenance.step ~loc:u.u_decl_loc "decl"
                 "%s declared without an initializer" u.u_var;
               Provenance.step ~loc:u.u_use_loc "use"
                 "earliest read of %s; definite assignment does not hold on some path"
                 u.u_var;
             ]
           ()))
    uninit;
  List.iter
    (fun (c : const_cond) ->
      let value = if c.c_value then "true" else "false" in
      Provenance.record
        (Provenance.make ~kind:"dataflow" ~analysis:"constant-condition"
           ~loc:c.c_loc
           ~message:(Printf.sprintf "condition is always %s in %s" value fname)
           ~witness:
             [
               Provenance.step ~loc:c.c_loc "condition"
                 "controlling expression folds to %s" value;
               Provenance.step "reaching-definitions"
                 "every definition reaching the condition assigns the same constant";
             ]
           ()))
    consts

let summarize_func (fn : Ast.func) =
  match fn.Ast.f_body with
  | None -> None
  | Some _ ->
    Telemetry.timed "dataflow.fn_us" @@ fun () ->
    let cfg = Cfg.of_func fn in
    Telemetry.observe "dataflow.fn_blocks" (float_of_int (Cfg.n_blocks cfg));
    let fname = Ast.qualified_name fn in
    let unreachable = unreachable_regions cfg in
    let dead = dead_stores cfg in
    let uninit = uninit_reads cfg in
    let consts = List.filter (fun c -> c.c_propagated) (constant_conditions cfg) in
    record_findings fname cfg ~unreachable ~dead ~uninit ~consts;
    Some
      {
        s_function = fname;
        s_blocks = Cfg.n_blocks cfg;
        s_edges = Cfg.n_edges cfg;
        s_unreachable = List.length unreachable;
        s_dead_stores = List.length dead;
        s_uninit_reads = List.length uninit;
        s_const_conditions = List.length consts;
      }

let summarize_functions fns =
  Telemetry.with_span ~cat:"dataflow" "dataflow"
    ~attrs:[ ("functions", string_of_int (List.length fns)) ]
    (fun () ->
      (* Each function's CFG + four fixpoint solves is independent;
         fan out across the domain pool in input order (exact List.map
         at --jobs 1).  Findings recorded on workers come back with each
         function's result and are absorbed in input order, so the
         journal merge is deterministic. *)
      let results =
        Telemetry.parallel_map
          (fun fn -> Provenance.collect (fun () -> summarize_func fn))
          fns
      in
      let summaries =
        List.filter_map
          (fun (summary, findings) ->
            Provenance.absorb findings;
            summary)
          results
      in
      Telemetry.add "dataflow.functions" (List.length summaries);
      summaries)

(** [summarize_file ~path ~key fns] is {!summarize_functions} memoized
    in the global artifact cache (when enabled) under the per-file cache
    key the caller derived (path + content hash + type-scan hash, see
    [Cfront.Project.file_key]).  The artifact stores the summaries
    {e and} the provenance findings the solves recorded, so a hit
    replays the findings and the evidence journal stays byte-identical
    to a cold run.  [path] owns the artifact for invalidation. *)
let summarize_file ~path ~key fns =
  match Cache.global () with
  | None -> summarize_functions fns
  | Some c ->
    let ckey = Cache.key ~kind:"dataflow" [ key ] in
    (match Cache.find c ~kind:"dataflow" ~key:ckey with
     | Some ((summaries : func_summary list), findings) ->
       Provenance.absorb findings;
       Telemetry.add "dataflow.functions" (List.length summaries);
       summaries
     | None ->
       let summaries, findings =
         Provenance.collect (fun () -> summarize_functions fns)
       in
       Cache.store c ~owner:path ~kind:"dataflow" ~key:ckey (summaries, findings);
       Provenance.absorb findings;
       summaries)

type totals = {
  t_functions : int;
  t_blocks : int;
  t_edges : int;
  t_unreachable : int;
  t_dead_stores : int;
  t_uninit_reads : int;
  t_const_conditions : int;
}

let zero_totals =
  { t_functions = 0; t_blocks = 0; t_edges = 0; t_unreachable = 0;
    t_dead_stores = 0; t_uninit_reads = 0; t_const_conditions = 0 }

let add_totals a b =
  {
    t_functions = a.t_functions + b.t_functions;
    t_blocks = a.t_blocks + b.t_blocks;
    t_edges = a.t_edges + b.t_edges;
    t_unreachable = a.t_unreachable + b.t_unreachable;
    t_dead_stores = a.t_dead_stores + b.t_dead_stores;
    t_uninit_reads = a.t_uninit_reads + b.t_uninit_reads;
    t_const_conditions = a.t_const_conditions + b.t_const_conditions;
  }

let totals_of summaries =
  List.fold_left
    (fun t s ->
      {
        t_functions = t.t_functions + 1;
        t_blocks = t.t_blocks + s.s_blocks;
        t_edges = t.t_edges + s.s_edges;
        t_unreachable = t.t_unreachable + s.s_unreachable;
        t_dead_stores = t.t_dead_stores + s.s_dead_stores;
        t_uninit_reads = t.t_uninit_reads + s.s_uninit_reads;
        t_const_conditions = t.t_const_conditions + s.s_const_conditions;
      })
    zero_totals summaries
