(** Basic-block control-flow graphs over [Cfront.Ast.func] bodies.

    Statements are lowered to a flat array of blocks holding straight-line
    instruction lists; all control transfer lives on the edges.  Branch
    conditions are decomposed through short-circuit [&&]/[||]/[!], so each
    [Icond] instruction is an atomic condition and every dataflow client
    sees condition-level precision for free.

    After an unconditional jump (return/break/continue/goto) lowering
    continues into a fresh block with no incoming edge, so syntactically
    dead statements survive as unreachable blocks — exactly what the
    MISRA 2.1 reachability check wants to find. *)

open Cfront

(** Why a condition exists, for checks that treat loop idioms specially. *)
type cond_origin = Cif | Cwhile | Cdo | Cfor

type instr_desc =
  | Idecl of Ast.var_decl  (** local declaration; initializer evaluated *)
  | Iexpr of Ast.expr  (** expression evaluated for its effect *)
  | Icond of Ast.expr * cond_origin
      (** atomic branch condition; always last in its block, out-edges
          are [Etrue]/[Efalse] *)
  | Iswitch of Ast.expr  (** switch scrutinee; out-edges are [Ecase]/[Edefault] *)
  | Ireturn of Ast.expr option

type instr = { i : instr_desc; iloc : Loc.t }

type edge_kind = Eseq | Etrue | Efalse | Ecase | Edefault

type block = {
  bid : int;
  mutable instrs : instr list;  (** in execution order *)
  mutable succs : (int * edge_kind) list;
  mutable preds : int list;
}

type t = {
  func : Ast.func;
  blocks : block array;  (** [blocks.(i).bid = i]; construction order
                             follows source order *)
  entry : int;
  exit_ : int;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable rev_blocks : block list;
  mutable n_blocks : int;
  by_id : (int, block) Hashtbl.t;
  mutable cur : block;
  mutable breaks : int list;  (** innermost break target first *)
  mutable continues : int list;
  mutable switches : switch_ctx list;
  labels : (string, int) Hashtbl.t;
  bexit : int;
}

and switch_ctx = { head : int; mutable seen_default : bool }

let new_block_raw b =
  let blk = { bid = b.n_blocks; instrs = []; succs = []; preds = [] } in
  b.n_blocks <- b.n_blocks + 1;
  b.rev_blocks <- blk :: b.rev_blocks;
  Hashtbl.add b.by_id blk.bid blk;
  blk

let find_block b id = Hashtbl.find b.by_id id

let add_edge b ~src ~dst kind =
  let s = find_block b src in
  if not (List.exists (fun (d, k) -> d = dst && k = kind) s.succs) then begin
    s.succs <- (dst, kind) :: s.succs;
    let d = find_block b dst in
    d.preds <- src :: d.preds
  end

let emit b i iloc = b.cur.instrs <- { i; iloc } :: b.cur.instrs

(** Switch to a fresh current block with no incoming edge (the code that
    follows an unconditional jump). *)
let start_dead_block b = b.cur <- new_block_raw b

(** Jump to [dst] and continue lowering into a dead block. *)
let goto_block b dst kind =
  add_edge b ~src:b.cur.bid ~dst kind;
  start_dead_block b

let label_block b name =
  match Hashtbl.find_opt b.labels name with
  | Some id -> id
  | None ->
    let blk = new_block_raw b in
    Hashtbl.add b.labels name blk.bid;
    blk.bid

(* Decompose a controlling expression into atomic conditions with explicit
   short-circuit edges.  On return the current block is a fresh dead block
   (every path out of the condition went to [t] or [f]). *)
let rec lower_cond b origin (e : Ast.expr) ~t ~f =
  match e.Ast.e with
  | Ast.Binary (Ast.Land, a, rhs) ->
    let mid = new_block_raw b in
    lower_cond b origin a ~t:mid.bid ~f;
    b.cur <- mid;
    lower_cond b origin rhs ~t ~f
  | Ast.Binary (Ast.Lor, a, rhs) ->
    let mid = new_block_raw b in
    lower_cond b origin a ~t ~f:mid.bid;
    b.cur <- mid;
    lower_cond b origin rhs ~t ~f
  | Ast.Unary (Ast.Lnot, a) -> lower_cond b origin a ~t:f ~f:t
  | _ ->
    emit b (Icond (e, origin)) e.Ast.eloc;
    add_edge b ~src:b.cur.bid ~dst:t Etrue;
    add_edge b ~src:b.cur.bid ~dst:f Efalse;
    start_dead_block b

let rec lower_stmt b (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Sempty -> ()
  | Ast.Sexpr e -> emit b (Iexpr e) s.Ast.sloc
  | Ast.Sdecl ds -> List.iter (fun d -> emit b (Idecl d) d.Ast.v_loc) ds
  | Ast.Sblock ss -> List.iter (lower_stmt b) ss
  | Ast.Sif { cond; then_; else_ } ->
    let bthen = new_block_raw b in
    let belse = match else_ with Some _ -> Some (new_block_raw b) | None -> None in
    let join = new_block_raw b in
    let ftarget = match belse with Some blk -> blk.bid | None -> join.bid in
    lower_cond b Cif cond ~t:bthen.bid ~f:ftarget;
    b.cur <- bthen;
    lower_stmt b then_;
    add_edge b ~src:b.cur.bid ~dst:join.bid Eseq;
    (match belse, else_ with
     | Some blk, Some es ->
       b.cur <- blk;
       lower_stmt b es;
       add_edge b ~src:b.cur.bid ~dst:join.bid Eseq
     | _ -> ());
    b.cur <- join
  | Ast.Swhile (c, body) ->
    let head = new_block_raw b in
    let bbody = new_block_raw b in
    let bexit = new_block_raw b in
    add_edge b ~src:b.cur.bid ~dst:head.bid Eseq;
    b.cur <- head;
    lower_cond b Cwhile c ~t:bbody.bid ~f:bexit.bid;
    b.cur <- bbody;
    b.breaks <- bexit.bid :: b.breaks;
    b.continues <- head.bid :: b.continues;
    lower_stmt b body;
    b.breaks <- List.tl b.breaks;
    b.continues <- List.tl b.continues;
    add_edge b ~src:b.cur.bid ~dst:head.bid Eseq;
    b.cur <- bexit
  | Ast.Sdo_while (body, c) ->
    let bbody = new_block_raw b in
    let bcond = new_block_raw b in
    let bexit = new_block_raw b in
    add_edge b ~src:b.cur.bid ~dst:bbody.bid Eseq;
    b.cur <- bbody;
    b.breaks <- bexit.bid :: b.breaks;
    b.continues <- bcond.bid :: b.continues;
    lower_stmt b body;
    b.breaks <- List.tl b.breaks;
    b.continues <- List.tl b.continues;
    add_edge b ~src:b.cur.bid ~dst:bcond.bid Eseq;
    b.cur <- bcond;
    lower_cond b Cdo c ~t:bbody.bid ~f:bexit.bid;
    b.cur <- bexit
  | Ast.Sfor { init; cond; update; body } ->
    (match init with
     | Ast.Fi_decl ds -> List.iter (fun d -> emit b (Idecl d) d.Ast.v_loc) ds
     | Ast.Fi_expr e -> emit b (Iexpr e) e.Ast.eloc
     | Ast.Fi_empty -> ());
    let head = new_block_raw b in
    let bbody = new_block_raw b in
    let bupdate = new_block_raw b in
    let bexit = new_block_raw b in
    add_edge b ~src:b.cur.bid ~dst:head.bid Eseq;
    b.cur <- head;
    (match cond with
     | Some c -> lower_cond b Cfor c ~t:bbody.bid ~f:bexit.bid
     | None -> add_edge b ~src:head.bid ~dst:bbody.bid Eseq);
    b.cur <- bbody;
    b.breaks <- bexit.bid :: b.breaks;
    b.continues <- bupdate.bid :: b.continues;
    lower_stmt b body;
    b.breaks <- List.tl b.breaks;
    b.continues <- List.tl b.continues;
    add_edge b ~src:b.cur.bid ~dst:bupdate.bid Eseq;
    b.cur <- bupdate;
    Option.iter (fun e -> emit b (Iexpr e) e.Ast.eloc) update;
    add_edge b ~src:b.cur.bid ~dst:head.bid Eseq;
    b.cur <- bexit
  | Ast.Sswitch (e, body) ->
    emit b (Iswitch e) s.Ast.sloc;
    let head = b.cur.bid in
    let bexit = new_block_raw b in
    let ctx = { head; seen_default = false } in
    b.switches <- ctx :: b.switches;
    b.breaks <- bexit.bid :: b.breaks;
    (* statements before the first case label are unreachable; drop into a
       dead block so they are modelled as such *)
    start_dead_block b;
    lower_stmt b body;
    b.breaks <- List.tl b.breaks;
    b.switches <- List.tl b.switches;
    (* last clause falls off the end of the switch *)
    add_edge b ~src:b.cur.bid ~dst:bexit.bid Eseq;
    if not ctx.seen_default then
      (* no default: the scrutinee may match nothing *)
      add_edge b ~src:head ~dst:bexit.bid Edefault;
    b.cur <- bexit
  | Ast.Scase _ ->
    (match b.switches with
     | ctx :: _ ->
       let clause = new_block_raw b in
       (* fall-through from the previous clause *)
       add_edge b ~src:b.cur.bid ~dst:clause.bid Eseq;
       add_edge b ~src:ctx.head ~dst:clause.bid Ecase;
       b.cur <- clause
     | [] -> ())
  | Ast.Sdefault ->
    (match b.switches with
     | ctx :: _ ->
       ctx.seen_default <- true;
       let clause = new_block_raw b in
       add_edge b ~src:b.cur.bid ~dst:clause.bid Eseq;
       add_edge b ~src:ctx.head ~dst:clause.bid Edefault;
       b.cur <- clause
     | [] -> ())
  | Ast.Sbreak ->
    (match b.breaks with
     | dst :: _ -> goto_block b dst Eseq
     | [] -> ())
  | Ast.Scontinue ->
    (match b.continues with
     | dst :: _ -> goto_block b dst Eseq
     | [] -> ())
  | Ast.Sreturn e ->
    emit b (Ireturn e) s.Ast.sloc;
    goto_block b b.bexit Eseq
  | Ast.Sgoto l -> goto_block b (label_block b l) Eseq
  | Ast.Slabel (l, inner) ->
    let dst = label_block b l in
    add_edge b ~src:b.cur.bid ~dst Eseq;
    b.cur <- find_block b dst;
    lower_stmt b inner
  | Ast.Stry { body; catches } ->
    (* conservative: any statement in the try may throw, so each handler
       is entered from the try head with no assignments from the body *)
    let try_head = b.cur.bid in
    let join = new_block_raw b in
    lower_stmt b body;
    add_edge b ~src:b.cur.bid ~dst:join.bid Eseq;
    List.iter
      (fun (_, handler) ->
        let h = new_block_raw b in
        add_edge b ~src:try_head ~dst:h.bid Eseq;
        b.cur <- h;
        lower_stmt b handler;
        add_edge b ~src:b.cur.bid ~dst:join.bid Eseq)
      catches;
    b.cur <- join

(** Lower a function definition.  Raises [Invalid_argument] on a
    prototype. *)
let of_func (fn : Ast.func) =
  match fn.Ast.f_body with
  | None -> invalid_arg "Dataflow.Cfg.of_func: function has no body"
  | Some body ->
    let entry = { bid = 0; instrs = []; succs = []; preds = [] } in
    let exit_ = { bid = 1; instrs = []; succs = []; preds = [] } in
    let by_id = Hashtbl.create 16 in
    Hashtbl.add by_id entry.bid entry;
    Hashtbl.add by_id exit_.bid exit_;
    let b =
      { rev_blocks = [ exit_; entry ]; n_blocks = 2; by_id; cur = entry;
        breaks = []; continues = []; switches = [];
        labels = Hashtbl.create 4; bexit = exit_.bid }
    in
    lower_stmt b body;
    (* falling off the end of the body returns *)
    add_edge b ~src:b.cur.bid ~dst:b.bexit Eseq;
    let blocks = Array.make b.n_blocks entry in
    List.iter (fun blk -> blocks.(blk.bid) <- blk) b.rev_blocks;
    Array.iter
      (fun blk ->
        blk.instrs <- List.rev blk.instrs;
        blk.succs <- List.rev blk.succs;
        blk.preds <- List.sort_uniq compare blk.preds)
      blocks;
    Telemetry.incr "dataflow.cfgs";
    Telemetry.add "dataflow.blocks" b.n_blocks;
    { func = fn; blocks; entry = entry.bid; exit_ = exit_.bid }

(* ------------------------------------------------------------------ *)
(* Simple graph queries                                                *)
(* ------------------------------------------------------------------ *)

let n_blocks cfg = Array.length cfg.blocks

let n_edges cfg =
  Array.fold_left (fun n blk -> n + List.length blk.succs) 0 cfg.blocks

(** Blocks reachable from the entry (the degenerate forward analysis). *)
let reachable cfg =
  let seen = Array.make (n_blocks cfg) false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter (fun (dst, _) -> go dst) cfg.blocks.(id).succs
    end
  in
  go cfg.entry;
  seen

(** First source location of a block, if it holds any instruction. *)
let first_loc blk =
  match blk.instrs with [] -> None | { iloc; _ } :: _ -> Some iloc

(* ------------------------------------------------------------------ *)
(* Def/use extraction                                                  *)
(* ------------------------------------------------------------------ *)

(** Simple-variable reads of an expression: every [Id] occurrence except
    the target of a plain assignment and operands of address-of.  Compound
    assignments ([+=] etc.) and increments read their target. *)
let uses_of_expr e =
  let acc = ref [] in
  let rec go e =
    match e.Ast.e with
    | Ast.Id name -> acc := (name, e.Ast.eloc) :: !acc
    | Ast.Unary (Ast.Addr_of, { e = Ast.Id _; _ }) -> ()
    | Ast.Assign (Ast.A_eq, { e = Ast.Id _; _ }, rhs) -> go rhs
    | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), { e = Ast.Id _; _ })
    | Ast.Postfix (_, { e = Ast.Id _; _ }) ->
      (* increments read the old value *)
      (match e.Ast.e with
       | Ast.Unary (_, ({ e = Ast.Id _; _ } as id))
       | Ast.Postfix (_, ({ e = Ast.Id _; _ } as id)) -> go id
       | _ -> ())
    | Ast.Assign (_, lhs, rhs) -> go lhs; go rhs
    | Ast.Unary (_, a) | Ast.Postfix (_, a) | Ast.C_cast (_, a)
    | Ast.Cpp_cast (_, _, a) | Ast.Sizeof_expr a
    | Ast.Delete { target = a; _ } -> go a
    | Ast.Throw a -> Option.iter go a
    | Ast.Binary (_, a, b2) | Ast.Index (a, b2) -> go a; go b2
    | Ast.Ternary (a, b2, c) -> go a; go b2; go c
    | Ast.Call (f, args) -> go f; List.iter go args
    | Ast.Kernel_launch { kernel; grid; block; args } ->
      go kernel; go grid; go block; List.iter go args
    | Ast.Member { obj; _ } -> go obj
    | Ast.New { array_size; init_args; _ } ->
      Option.iter go array_size; List.iter go init_args
    | Ast.Int_const _ | Ast.Float_const _ | Ast.Bool_const _ | Ast.Str_const _
    | Ast.Char_const _ | Ast.Nullptr | Ast.Sizeof_type _ -> ()
  in
  go e;
  List.rev !acc

(** Simple variables written by an expression: assignment to a bare [Id]
    (any operator) and pre/post increment/decrement of a bare [Id]. *)
let defs_of_expr e =
  let acc = ref [] in
  let rec go e =
    (match e.Ast.e with
     | Ast.Assign (_, { e = Ast.Id name; _ }, _)
     | Ast.Unary ((Ast.Pre_inc | Ast.Pre_dec), { e = Ast.Id name; _ })
     | Ast.Postfix (_, { e = Ast.Id name; _ }) ->
       acc := (name, e.Ast.eloc) :: !acc
     | _ -> ());
    match e.Ast.e with
    | Ast.Unary (_, a) | Ast.Postfix (_, a) | Ast.C_cast (_, a)
    | Ast.Cpp_cast (_, _, a) | Ast.Sizeof_expr a
    | Ast.Delete { target = a; _ } -> go a
    | Ast.Throw a -> Option.iter go a
    | Ast.Binary (_, a, b) | Ast.Index (a, b) | Ast.Assign (_, a, b) -> go a; go b
    | Ast.Ternary (a, b, c) -> go a; go b; go c
    | Ast.Call (f, args) -> go f; List.iter go args
    | Ast.Kernel_launch { kernel; grid; block; args } ->
      go kernel; go grid; go block; List.iter go args
    | Ast.Member { obj; _ } -> go obj
    | Ast.New { array_size; init_args; _ } ->
      Option.iter go array_size; List.iter go init_args
    | Ast.Int_const _ | Ast.Float_const _ | Ast.Bool_const _ | Ast.Str_const _
    | Ast.Char_const _ | Ast.Nullptr | Ast.Id _ | Ast.Sizeof_type _ -> ()
  in
  go e;
  List.rev !acc

(** Variables whose address is taken ([&x]).  A definite-assignment client
    treats these as definitions (out-parameter idiom); a liveness client
    treats them as uses and an escape. *)
let addr_taken_of_expr e =
  let acc = ref [] in
  Ast.iter_exprs_of_expr
    (fun x ->
      match x.Ast.e with
      | Ast.Unary (Ast.Addr_of, { e = Ast.Id name; _ }) -> acc := name :: !acc
      | _ -> ())
    e;
  List.rev !acc

let exprs_of_instr instr =
  match instr.i with
  | Idecl d -> (match d.Ast.v_init with Some e -> [ e ] | None -> [])
  | Iexpr e | Icond (e, _) | Iswitch e -> [ e ]
  | Ireturn (Some e) -> [ e ]
  | Ireturn None -> []

let uses_of_instr instr = List.concat_map uses_of_expr (exprs_of_instr instr)

let defs_of_instr instr =
  let from_exprs = List.concat_map defs_of_expr (exprs_of_instr instr) in
  match instr.i with
  | Idecl { Ast.v_name; v_init = Some _; v_loc; _ } -> (v_name, v_loc) :: from_exprs
  | _ -> from_exprs

let addr_taken_of_instr instr =
  List.concat_map addr_taken_of_expr (exprs_of_instr instr)

(** All address-taken variables anywhere in the function: their stores can
    be observed through the pointer, so dead-store clients skip them. *)
let addr_taken_of_cfg cfg =
  Array.fold_left
    (fun acc blk ->
      List.fold_left
        (fun acc instr -> addr_taken_of_instr instr @ acc)
        acc blk.instrs)
    [] cfg.blocks
  |> List.sort_uniq compare
