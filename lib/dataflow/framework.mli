(** Generic worklist fixpoint solver over a join-semilattice.

    Facts are reported in execution order regardless of direction:
    [before.(b)] holds at the first instruction of block [b] and
    [after.(b)] past its last. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** least element; join identity and the initial value of every
      non-boundary block *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = { before : L.t array; after : L.t array }

  (** [solve ~cfg ~direction ~boundary ~transfer] iterates to the least
      fixpoint.  [boundary] is the fact at the entry block (forward) or
      exit block (backward); [transfer b fact] maps the fact across
      block [b] in execution order for [Forward] and against it for
      [Backward]. *)
  val solve :
    cfg:Cfg.t ->
    direction:direction ->
    boundary:L.t ->
    transfer:(int -> L.t -> L.t) ->
    result

  (** Like {!solve}, also returning the number of transfer applications —
      used by tests to check convergence on loops. *)
  val solve_counted :
    cfg:Cfg.t ->
    direction:direction ->
    boundary:L.t ->
    transfer:(int -> L.t -> L.t) ->
    result * int
end
