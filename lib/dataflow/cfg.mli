(** Basic-block control-flow graphs over [Cfront.Ast.func] bodies.

    Branch conditions are decomposed through short-circuit [&&]/[||]/[!]
    so every [Icond] is an atomic condition; statements lowered after an
    unconditional jump land in blocks with no incoming edge, which is how
    unreachable code survives into the graph. *)

open Cfront

(** Why a condition exists, for checks that treat loop idioms specially. *)
type cond_origin = Cif | Cwhile | Cdo | Cfor

type instr_desc =
  | Idecl of Ast.var_decl  (** local declaration; initializer evaluated *)
  | Iexpr of Ast.expr  (** expression evaluated for its effect *)
  | Icond of Ast.expr * cond_origin
      (** atomic branch condition; always last in its block, out-edges
          are [Etrue]/[Efalse] *)
  | Iswitch of Ast.expr  (** switch scrutinee; out-edges are [Ecase]/[Edefault] *)
  | Ireturn of Ast.expr option

type instr = { i : instr_desc; iloc : Loc.t }

type edge_kind = Eseq | Etrue | Efalse | Ecase | Edefault

type block = {
  bid : int;
  mutable instrs : instr list;  (** in execution order *)
  mutable succs : (int * edge_kind) list;
  mutable preds : int list;
}

type t = {
  func : Ast.func;
  blocks : block array;  (** [blocks.(i).bid = i]; construction order
                             follows source order *)
  entry : int;
  exit_ : int;
}

(** Lower a function definition to its CFG.
    @raise Invalid_argument on a prototype. *)
val of_func : Ast.func -> t

val n_blocks : t -> int
val n_edges : t -> int

(** Blocks reachable from the entry, indexed by block id. *)
val reachable : t -> bool array

(** First source location of a block, if it holds any instruction. *)
val first_loc : block -> Loc.t option

(** Simple-variable reads: every [Id] occurrence except plain-assignment
    targets and address-of operands; compound assignments and
    increments read their target. *)
val uses_of_expr : Ast.expr -> (string * Loc.t) list

(** Simple variables written: assignment to a bare [Id] (any operator)
    and pre/post increment/decrement. *)
val defs_of_expr : Ast.expr -> (string * Loc.t) list

(** Variables whose address is taken ([&x]) in the expression. *)
val addr_taken_of_expr : Ast.expr -> string list

val exprs_of_instr : instr -> Ast.expr list
val uses_of_instr : instr -> (string * Loc.t) list

(** Instruction defs; a declaration with an initializer defines its
    variable. *)
val defs_of_instr : instr -> (string * Loc.t) list

val addr_taken_of_instr : instr -> string list

(** All address-taken variables anywhere in the function (their stores
    may be observed through the pointer). *)
val addr_taken_of_cfg : t -> string list
