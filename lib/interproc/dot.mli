(** Graphviz export of the call graph with recursion-cycle clusters. *)

val render : Cfront.Callgraph.t -> string
val write : path:string -> Cfront.Callgraph.t -> unit
