(** Graphviz export of the call graph, with recursion cycles rendered
    as clusters so they are visually inspectable (ISO 26262-6 asks for
    "no recursion" — a red cluster is the violation witness). *)

open Cfront

let escape name =
  let buf = Buffer.create (String.length name + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    name;
  Buffer.contents buf

let node_id name = Printf.sprintf "\"%s\"" (escape name)

(** Render [graph] in DOT syntax.  Recursive SCCs become filled
    clusters; guessed edges are dashed, kernel-launch edges bold. *)
let render (graph : Callgraph.t) =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph callgraph {\n";
  out "  rankdir=LR;\n";
  out "  node [shape=box, fontsize=10];\n";
  let cycles = Callgraph.recursion_cycles graph in
  let in_cycle =
    let tbl = Hashtbl.create 16 in
    List.iter (fun c -> List.iter (fun v -> Hashtbl.replace tbl v ()) c) cycles;
    tbl
  in
  List.iteri
    (fun i cycle ->
      out "  subgraph cluster_scc%d {\n" i;
      out "    label=\"recursion cycle %d\";\n" i;
      out "    color=red;\n    style=filled;\n    fillcolor=mistyrose;\n";
      List.iter (fun v -> out "    %s;\n" (node_id v)) cycle;
      out "  }\n")
    cycles;
  List.iter
    (fun v -> if not (Hashtbl.mem in_cycle v) then out "  %s;\n" (node_id v))
    graph.Callgraph.nodes;
  (* one edge per (caller, callee, style), deduplicated *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (s : Callgraph.call_site) ->
      let style =
        match (s.Callgraph.cs_outcome, s.Callgraph.cs_kind) with
        | Callgraph.Guessed _, _ -> Some " [style=dashed]"
        | Callgraph.Resolved _, Callgraph.Kernel -> Some " [style=bold, color=blue]"
        | Callgraph.Resolved _, _ -> Some ""
        | _ -> None
      in
      match (style, s.Callgraph.cs_outcome) with
      | Some attrs, (Callgraph.Resolved q | Callgraph.Guessed (q, _)) ->
        let key = (s.Callgraph.cs_caller, q, attrs) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out "  %s -> %s%s;\n" (node_id s.Callgraph.cs_caller) (node_id q) attrs
        end
      | _ -> ())
    graph.Callgraph.sites;
  out "}\n";
  Buffer.contents buf

let write ~path graph =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render graph))
