(** Whole-program summary engine over the SCC condensation of the call
    graph.

    Per-function facts (direct global accesses, IO/allocation calls,
    frame size) are computed independently per function; summaries are
    then propagated bottom-up over the SCC DAG: the strongly-connected
    components are grouped into levels (level 0 = components with no
    callee component) and processed level by level.  Within a level
    every component only reads summaries of strictly lower levels, so
    components of one level are fanned out over the domain pool
    ({!Telemetry.parallel_map}); at [--jobs 1] that is exactly the
    sequential topological walk, which is the oracle every other worker
    count must reproduce bit for bit.

    A recursive component (multi-node SCC or direct self-call) gets
    [Unbounded] call depth and stack bound with the cycle as witness,
    and its parameter-initialization facts degrade to the conservative
    "may initialize" so no downstream check gains false positives from
    recursion. *)

open Cfront
module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type depth =
  | Finite of int
  | Unbounded of string list  (** witness: one recursion cycle *)

type func_summary = {
  s_name : string;  (** qualified function name *)
  s_module : string;  (** module owning the definition *)
  s_scc : int;  (** SCC index, topological (callers first) *)
  s_level : int;  (** 0 = leaf component of the condensation *)
  s_recursive : bool;  (** member of a recursion cycle *)
  s_globals_read : SS.t;  (** transitive: own reads + callees' *)
  s_globals_written : SS.t;  (** transitive, address-taken counts as write *)
  s_does_io : bool;  (** transitively reaches an IO routine *)
  s_allocates : bool;  (** transitively reaches new/delete/malloc/free *)
  s_calls_unknown : bool;
      (** has (or reaches) an unresolved, ambiguous or indirect call *)
  s_pure : bool;
      (** no transitive writes/IO/allocation and no unknown callees *)
  s_call_depth : depth;  (** worst-case call-chain depth, leaf = 1 *)
  s_stack_words : depth;  (** worst-case stack bound, in abstract words *)
  s_unresolved_sites : int;  (** own unresolved/ambiguous/indirect sites *)
  s_param_inits : (string * bool) list;
      (** per parameter, in declaration order: may the callee initialize
          the pointee?  [false] only when the parameter is provably
          ignored by the body (and the function is not recursive) *)
}

type module_coupling = {
  mc_module : string;
  mc_functions : int;
  mc_globals_declared : int;  (** mutable globals declared in the module *)
  mc_globals_read : int;  (** distinct mutable globals read directly *)
  mc_globals_written : int;
  mc_shared : int;  (** of those, touched by at least one other module *)
}

(** An uninitialized value flowing through a call: [&x] was passed to a
    callee that provably never initializes the pointee, and [x] was read
    afterwards while still possibly uninitialized.  Disjoint from the
    intraprocedural 9.1 findings by construction. *)
type uninit_flow = {
  ip_var : string;
  ip_function : string;  (** caller containing the flow *)
  ip_callee : string;  (** callee that failed to initialize *)
  ip_call_loc : Loc.t;
  ip_use_loc : Loc.t;
  ip_decl_loc : Loc.t;
}

type t = {
  graph : Callgraph.t;
  summaries : func_summary list;  (** sorted by qualified name *)
  cycles : string list list;  (** recursion cycles, SCC order *)
  n_sccs : int;
  n_levels : int;
  max_call_depth : depth;
  max_stack_words : depth;
  coupling : module_coupling list;  (** sorted by module name *)
  uninit_flows : uninit_flow list;  (** sorted by (file, line, col, var) *)
  globals_total : int;  (** mutable globals in the program *)
}

(* ------------------------------------------------------------------ *)
(* Depth arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let depth_max a b =
  match (a, b) with
  | Unbounded w, _ -> Unbounded w
  | _, Unbounded w -> Unbounded w
  | Finite x, Finite y -> Finite (Stdlib.max x y)

let depth_add a n =
  match a with Finite x -> Finite (x + n) | Unbounded w -> Unbounded w

let render_depth = function
  | Finite n -> string_of_int n
  | Unbounded cycle -> Printf.sprintf "unbounded (%s)" (String.concat " -> " cycle)

(* ------------------------------------------------------------------ *)
(* Direct per-function facts                                           *)
(* ------------------------------------------------------------------ *)

let io_names =
  SS.of_list
    [ "printf"; "fprintf"; "sprintf"; "snprintf"; "vprintf"; "puts";
      "putchar"; "fopen"; "fclose"; "fread"; "fwrite"; "fgets"; "fputs";
      "scanf"; "fscanf"; "sscanf"; "getc"; "getchar"; "gets"; "perror" ]

let alloc_names =
  SS.of_list [ "malloc"; "calloc"; "realloc"; "free"; "aligned_alloc" ]

(* Words a local declaration occupies on the frame: arrays get their
   element count, everything else one abstract word. *)
let rec decl_words = function
  | Ast.Tarray (t, Some n) -> n * decl_words t
  | Ast.Tarray (t, None) -> decl_words t
  | Ast.Tconst t -> decl_words t
  | _ -> 1

type direct = {
  dr_reads : SS.t;
  dr_writes : SS.t;
  dr_io : bool;
  dr_alloc : bool;
  dr_frame : int;  (** frame words: 2 overhead + params + locals *)
  dr_mentions : SS.t;  (** every identifier occurring in the body *)
}

(* Local declaration and parameter names, to separate global accesses
   from local ones of the same simple name. *)
let local_names (fn : Ast.func) =
  let acc = ref SS.empty in
  List.iter (fun p -> acc := SS.add p.Ast.p_name !acc) fn.Ast.f_params;
  (match fn.Ast.f_body with
   | None -> ()
   | Some body ->
     Ast.iter_stmts
       (fun s ->
         match s.Ast.s with
         | Ast.Sdecl ds | Ast.Sfor { init = Ast.Fi_decl ds; _ } ->
           List.iter (fun d -> acc := SS.add d.Ast.v_name !acc) ds
         | _ -> ())
       body);
  !acc

let direct_facts ~globals (fn : Ast.func) =
  let locals = local_names fn in
  let is_global n = SS.mem n globals && not (SS.mem n locals) in
  let cfg = Dataflow.Cfg.of_func fn in
  let reads = ref SS.empty and writes = ref SS.empty in
  let io = ref false and alloc = ref false in
  Array.iter
    (fun (blk : Dataflow.Cfg.block) ->
      List.iter
        (fun (instr : Dataflow.Cfg.instr) ->
          List.iter
            (fun (n, _) -> if is_global n then reads := SS.add n !reads)
            (Dataflow.Cfg.uses_of_instr instr);
          List.iter
            (fun (n, _) -> if is_global n then writes := SS.add n !writes)
            (Dataflow.Cfg.defs_of_instr instr);
          (* address-taken global: its value may be written through the
             pointer — count as a write *)
          List.iter
            (fun n -> if is_global n then writes := SS.add n !writes)
            (Dataflow.Cfg.addr_taken_of_instr instr))
        blk.Dataflow.Cfg.instrs)
    cfg.Dataflow.Cfg.blocks;
  let mentions = ref SS.empty in
  let frame_locals = ref 0 in
  Ast.iter_exprs_of_func
    (fun e ->
      match e.Ast.e with
      | Ast.Id n -> mentions := SS.add n !mentions
      | Ast.New _ | Ast.Delete _ -> alloc := true
      | Ast.Call ({ e = Ast.Id n; _ }, _) ->
        if SS.mem n io_names then io := true;
        if SS.mem n alloc_names then alloc := true
      | _ -> ())
    fn;
  (match fn.Ast.f_body with
   | None -> ()
   | Some body ->
     Ast.iter_stmts
       (fun s ->
         match s.Ast.s with
         | Ast.Sdecl ds | Ast.Sfor { init = Ast.Fi_decl ds; _ } ->
           List.iter
             (fun d -> frame_locals := !frame_locals + decl_words d.Ast.v_type)
             ds
         | _ -> ())
       body);
  {
    dr_reads = !reads;
    dr_writes = !writes;
    dr_io = !io;
    dr_alloc = !alloc;
    dr_frame = 2 + List.length fn.Ast.f_params + !frame_locals;
    dr_mentions = !mentions;
  }

(* ------------------------------------------------------------------ *)
(* Program model: globals, module ownership                            *)
(* ------------------------------------------------------------------ *)

(** Mutable (non-const, non-extern) globals of the program, by simple
    name — the name functions reference them by. *)
let mutable_globals_of_files (files : Project.parsed_file list) =
  List.fold_left
    (fun acc (pf : Project.parsed_file) ->
      List.fold_left
        (fun acc (g : Ast.global_var) ->
          if g.Ast.g_const || g.Ast.g_extern then acc
          else SS.add g.Ast.g_decl.Ast.v_name acc)
        acc
        (Ast.globals_of_tu pf.Project.tu))
    SS.empty files

let owner_table (files : Project.parsed_file list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (pf : Project.parsed_file) ->
      let m = pf.Project.file.Project.modname in
      List.iter
        (fun (f : Ast.func) ->
          if f.Ast.f_body <> None then
            Hashtbl.replace tbl (Ast.qualified_name f) m)
        (Ast.functions_of_tu pf.Project.tu))
    files;
  tbl

(* ------------------------------------------------------------------ *)
(* SCC condensation and level schedule                                 *)
(* ------------------------------------------------------------------ *)

(* Returns (sccs array in topological order, node -> scc index,
   levels: scc indices grouped by level, bottom level first). *)
let condense (graph : Callgraph.t) =
  let sccs = Array.of_list (Callgraph.sccs graph) in
  let n = Array.length sccs in
  let scc_of = Hashtbl.create 64 in
  Array.iteri (fun i comp -> List.iter (fun v -> Hashtbl.replace scc_of v i) comp) sccs;
  (* level.(i) = 0 for leaf components, else 1 + max callee level.
     [Callgraph.sccs] lists callers before callees, so walking the array
     backwards visits callees first. *)
  let level = Array.make n 0 in
  for i = n - 1 downto 0 do
    let deepest = ref (-1) in
    List.iter
      (fun v ->
        List.iter
          (fun callee ->
            match Hashtbl.find_opt scc_of callee with
            | Some j when j <> i -> deepest := Stdlib.max !deepest level.(j)
            | _ -> ())
          (Callgraph.callees graph v))
      sccs.(i);
    level.(i) <- 1 + !deepest
  done;
  let n_levels = Array.fold_left (fun m l -> Stdlib.max m (l + 1)) 0 level in
  let levels = Array.make n_levels [] in
  (* group by level, preserving topological order within a level *)
  for i = n - 1 downto 0 do
    levels.(level.(i)) <- i :: levels.(level.(i))
  done;
  (sccs, scc_of, level, levels)

(* ------------------------------------------------------------------ *)
(* Bottom-up summary propagation                                       *)
(* ------------------------------------------------------------------ *)

let unresolved_sites_by_caller (graph : Callgraph.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Callgraph.call_site) ->
      match s.Callgraph.cs_outcome with
      | Callgraph.Ambiguous _ | Callgraph.Unresolved | Callgraph.Indirect_call ->
        Hashtbl.replace tbl s.Callgraph.cs_caller
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s.Callgraph.cs_caller))
      | Callgraph.Resolved _ | Callgraph.Guessed _ -> ())
    graph.Callgraph.sites;
  tbl

(* Summaries for the members of one SCC, given the summaries of every
   strictly lower level in [tbl] (read-only here). *)
let summarize_scc ~graph ~owner ~params ~directs ~unresolved ~tbl ~scc_index
    ~level members =
  let recursive =
    match members with
    | [ v ] -> List.mem v (Callgraph.callees graph v)
    | _ -> true
  in
  let member_set = SS.of_list members in
  (* distinct callees outside this SCC, over all members *)
  let external_callees =
    SS.elements
      (List.fold_left
         (fun acc v ->
           List.fold_left
             (fun acc c -> if SS.mem c member_set then acc else SS.add c acc)
             acc (Callgraph.callees graph v))
         SS.empty members)
  in
  let callee_summaries =
    List.filter_map (fun c -> Hashtbl.find_opt tbl c) external_callees
  in
  (* SCC-wide transitive effects: union of members' direct facts and
     external callees' transitive facts (the trivial fixpoint — every
     member of a cycle reaches everything the cycle reaches) *)
  let fold_members f init = List.fold_left (fun acc v -> f acc (Hashtbl.find directs v)) init members in
  let reads =
    List.fold_left
      (fun acc (s : func_summary) -> SS.union acc s.s_globals_read)
      (fold_members (fun acc d -> SS.union acc d.dr_reads) SS.empty)
      callee_summaries
  in
  let writes =
    List.fold_left
      (fun acc (s : func_summary) -> SS.union acc s.s_globals_written)
      (fold_members (fun acc d -> SS.union acc d.dr_writes) SS.empty)
      callee_summaries
  in
  let does_io =
    fold_members (fun acc d -> acc || d.dr_io) false
    || List.exists (fun s -> s.s_does_io) callee_summaries
  in
  let allocates =
    fold_members (fun acc d -> acc || d.dr_alloc) false
    || List.exists (fun s -> s.s_allocates) callee_summaries
  in
  let own_unknown v = Option.value ~default:0 (Hashtbl.find_opt unresolved v) in
  let calls_unknown =
    List.exists (fun v -> own_unknown v > 0) members
    || List.exists (fun s -> s.s_calls_unknown) callee_summaries
  in
  let callee_depth =
    List.fold_left
      (fun acc s -> depth_max acc s.s_call_depth)
      (Finite 0) callee_summaries
  in
  let callee_stack =
    List.fold_left
      (fun acc s -> depth_max acc s.s_stack_words)
      (Finite 0) callee_summaries
  in
  List.map
    (fun v ->
      let d = Hashtbl.find directs v in
      let call_depth =
        if recursive then Unbounded members else depth_add callee_depth 1
      in
      let stack_words =
        if recursive then Unbounded members else depth_add callee_stack d.dr_frame
      in
      (* A parameter "may initialize" its pointee unless the body
         provably ignores it: a recursive function, or any mention of
         the name at all, keeps the conservative answer. *)
      let param_inits =
        List.map
          (fun (p : Ast.param) ->
            (p.Ast.p_name, recursive || SS.mem p.Ast.p_name d.dr_mentions))
          (Option.value ~default:[] (Hashtbl.find_opt params v))
      in
      {
        s_name = v;
        s_module = Option.value ~default:"?" (Hashtbl.find_opt owner v);
        s_scc = scc_index;
        s_level = level;
        s_recursive = recursive;
        s_globals_read = reads;
        s_globals_written = writes;
        s_does_io = does_io;
        s_allocates = allocates;
        s_calls_unknown = calls_unknown;
        s_pure =
          SS.is_empty writes && (not does_io) && (not allocates)
          && not calls_unknown;
        s_call_depth = call_depth;
        s_stack_words = stack_words;
        s_unresolved_sites = own_unknown v;
        s_param_inits = param_inits;
      })
    members

(* ------------------------------------------------------------------ *)
(* Interprocedural definite assignment (cross-call uninit)             *)
(* ------------------------------------------------------------------ *)

module VarSolver = Dataflow.Framework.Make (struct
  type t = SS.t

  let bottom = SS.empty
  let equal = SS.equal
  let join = SS.union
end)

(* Does parameter [j] of resolved callee [q] provably NOT initialize its
   pointee?  Anything unknown answers [false] (may initialize), so the
   analysis can only get MORE conservative than the intraprocedural one,
   never noisier. *)
let param_noinit tbl q j =
  match Hashtbl.find_opt tbl q with
  | None -> false
  | Some s -> (
    match List.nth_opt s.s_param_inits j with
    | Some (_, may_init) -> not may_init
    | None -> false)

(* The variables [x] such that every [&x] in [instr] occurs as an
   argument to a resolved direct call whose matching parameter provably
   ignores its pointee — those address-takings do NOT initialize.
   Returns (non-initializing set, attribution list (x, callee, loc)). *)
let noinit_addr_args ~summaries ~resolve_call (instr : Dataflow.Cfg.instr) =
  let noinit = ref [] and other = ref SS.empty in
  let rec walk (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Call ({ e = Ast.Id fname; _ }, args) -> (
      match resolve_call fname with
      | Some q ->
        List.iteri
          (fun j (arg : Ast.expr) ->
            match arg.Ast.e with
            | Ast.Unary (Ast.Addr_of, { e = Ast.Id x; _ }) ->
              if param_noinit summaries q j then
                noinit := (x, q, e.Ast.eloc) :: !noinit
              else other := SS.add x !other
            | _ -> walk arg)
          args
      | None ->
        List.iter
          (fun arg -> other := SS.union !other (SS.of_list (Dataflow.Cfg.addr_taken_of_expr arg)))
          args)
    | _ ->
      (* any other address-taking initializes, as in the base analysis *)
      Ast.iter_exprs_of_expr
        (fun sub ->
          match sub.Ast.e with
          | Ast.Call ({ e = Ast.Id _; _ }, _) when sub != e -> ()
          | Ast.Unary (Ast.Addr_of, { e = Ast.Id x; _ }) ->
            if
              not
                (List.exists
                   (fun (y, _, _) -> y = x)
                   !noinit)
            then other := SS.add x !other
          | _ -> ())
        e
  in
  List.iter walk (Dataflow.Cfg.exprs_of_instr instr);
  let pure =
    List.filter (fun (x, _, _) -> not (SS.mem x !other)) !noinit
  in
  (SS.of_list (List.map (fun (x, _, _) -> x) pure), pure)

(* Like Analyses.uninit_transfer, except address-takings classified as
   non-initializing call arguments keep the variable possibly-uninit. *)
let flow_transfer ~tracked ~summaries ~resolve_call (blk : Dataflow.Cfg.block)
    fact =
  List.fold_left
    (fun fact (instr : Dataflow.Cfg.instr) ->
      let noinit, _ = noinit_addr_args ~summaries ~resolve_call instr in
      let clears =
        List.map fst (Dataflow.Cfg.defs_of_instr instr)
        @ List.filter
            (fun n -> not (SS.mem n noinit))
            (Dataflow.Cfg.addr_taken_of_instr instr)
      in
      let fact = List.fold_left (fun f n -> SS.remove n f) fact clears in
      match instr.Dataflow.Cfg.i with
      | Dataflow.Cfg.Idecl d
        when d.Ast.v_init = None && Hashtbl.mem tracked d.Ast.v_name ->
        SS.add d.Ast.v_name fact
      | _ -> fact)
    fact blk.Dataflow.Cfg.instrs

(* Cross-call uninit flows in one function.  [resolve_call] maps a raw
   direct-callee name in this caller to its resolved qualified name. *)
let uninit_flows_of_func ~summaries ~resolve_call (fn : Ast.func) =
  match fn.Ast.f_body with
  | None -> []
  | Some _ ->
    let cfg = Dataflow.Cfg.of_func fn in
    let tracked = Dataflow.Analyses.tracked_decls cfg in
    if Hashtbl.length tracked = 0 then []
    else begin
      let result =
        VarSolver.solve ~cfg ~direction:Dataflow.Framework.Forward
          ~boundary:SS.empty ~transfer:(fun bid fact ->
            flow_transfer ~tracked ~summaries ~resolve_call
              cfg.Dataflow.Cfg.blocks.(bid) fact)
      in
      let fname = Ast.qualified_name fn in
      (* first non-initializing call per variable, for attribution *)
      let attr = Hashtbl.create 8 in
      Array.iter
        (fun (blk : Dataflow.Cfg.block) ->
          List.iter
            (fun instr ->
              let _, attrs = noinit_addr_args ~summaries ~resolve_call instr in
              List.iter
                (fun (x, q, loc) ->
                  if not (Hashtbl.mem attr x) then Hashtbl.add attr x (q, loc))
                attrs)
            blk.Dataflow.Cfg.instrs)
        cfg.Dataflow.Cfg.blocks;
      if Hashtbl.length attr = 0 then []
      else begin
        (* variables the intraprocedural analysis already reports *)
        let base =
          SS.of_list
            (List.map
               (fun (f : Dataflow.Analyses.uninit_finding) ->
                 f.Dataflow.Analyses.u_var)
               (Dataflow.Analyses.uninit_reads cfg))
        in
        let candidates = ref [] in
        Array.iter
          (fun (blk : Dataflow.Cfg.block) ->
            let fact = ref result.VarSolver.before.(blk.Dataflow.Cfg.bid) in
            List.iter
              (fun (instr : Dataflow.Cfg.instr) ->
                List.iter
                  (fun (n, use_loc) ->
                    if
                      SS.mem n !fact && Hashtbl.mem attr n
                      && not (SS.mem n base)
                    then
                      match Hashtbl.find_opt tracked n with
                      | Some decl_loc ->
                        let callee, call_loc = Hashtbl.find attr n in
                        candidates :=
                          { ip_var = n; ip_function = fname;
                            ip_callee = callee; ip_call_loc = call_loc;
                            ip_use_loc = use_loc; ip_decl_loc = decl_loc }
                          :: !candidates
                      | None -> ())
                  (Dataflow.Cfg.uses_of_instr instr);
                fact :=
                  flow_transfer ~tracked ~summaries ~resolve_call
                    { blk with Dataflow.Cfg.instrs = [ instr ] }
                    !fact)
              blk.Dataflow.Cfg.instrs)
          cfg.Dataflow.Cfg.blocks;
        (* earliest use per variable *)
        let by_pos a b =
          compare
            (a.ip_use_loc.Loc.line, a.ip_use_loc.Loc.col, a.ip_var)
            (b.ip_use_loc.Loc.line, b.ip_use_loc.Loc.col, b.ip_var)
        in
        let sorted = List.sort by_pos (List.rev !candidates) in
        let seen = Hashtbl.create 4 in
        List.filter
          (fun f ->
            if Hashtbl.mem seen f.ip_var then false
            else begin
              Hashtbl.add seen f.ip_var ();
              true
            end)
          sorted
      end
    end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let of_files (files : Project.parsed_file list) =
  Telemetry.with_span ~cat:"interproc" "interproc" (fun () ->
      let functions =
        List.concat_map
          (fun (pf : Project.parsed_file) -> Ast.functions_of_tu pf.Project.tu)
          files
      in
      let defined = List.filter (fun f -> f.Ast.f_body <> None) functions in
      let graph = Callgraph.build functions in
      let globals = mutable_globals_of_files files in
      let owner = owner_table files in
      let params = Hashtbl.create 64 in
      List.iter
        (fun (f : Ast.func) ->
          Hashtbl.replace params (Ast.qualified_name f) f.Ast.f_params)
        defined;
      (* phase 1: direct facts, independent per function *)
      let directs = Hashtbl.create 64 in
      List.iter2
        (fun (f : Ast.func) d -> Hashtbl.replace directs (Ast.qualified_name f) d)
        defined
        (Telemetry.parallel_map (fun f -> direct_facts ~globals f) defined);
      (* phase 2: bottom-up over SCC levels; within a level, components
         are independent (they read only lower-level summaries) *)
      let sccs, _scc_of, _level_of, levels = condense graph in
      let unresolved = unresolved_sites_by_caller graph in
      let tbl = Hashtbl.create 64 in
      Array.iteri
        (fun lvl scc_indices ->
          let results =
            Telemetry.parallel_map ~chunk_size:1
              (fun i ->
                summarize_scc ~graph ~owner ~params ~directs ~unresolved ~tbl
                  ~scc_index:i ~level:lvl sccs.(i))
              scc_indices
          in
          (* merge on the main domain before the next level starts *)
          List.iter
            (List.iter (fun s -> Hashtbl.replace tbl s.s_name s))
            results)
        levels;
      (* phase 3: cross-call uninit, independent per caller *)
      let resolve_for (f : Ast.func) =
        let caller = Ast.qualified_name f in
        let cache = Hashtbl.create 8 in
        List.iter
          (fun (s : Callgraph.call_site) ->
            if s.Callgraph.cs_caller = caller && s.Callgraph.cs_kind = Callgraph.Direct
            then
              match s.Callgraph.cs_outcome with
              | Callgraph.Resolved q | Callgraph.Guessed (q, _) ->
                Hashtbl.replace cache s.Callgraph.cs_name q
              | _ -> ())
          graph.Callgraph.sites;
        fun name -> Hashtbl.find_opt cache name
      in
      let uninit_flows =
        List.concat
          (Telemetry.parallel_map
             (fun f ->
               uninit_flows_of_func ~summaries:tbl ~resolve_call:(resolve_for f)
                 f)
             defined)
        |> List.sort (fun a b ->
               compare
                 ( a.ip_use_loc.Loc.file, a.ip_use_loc.Loc.line,
                   a.ip_use_loc.Loc.col, a.ip_var )
                 ( b.ip_use_loc.Loc.file, b.ip_use_loc.Loc.line,
                   b.ip_use_loc.Loc.col, b.ip_var ))
      in
      (* module coupling from DIRECT accesses: which module's code
         touches which mutable globals *)
      let module_names =
        List.sort_uniq compare
          (List.filter_map
             (fun (f : Ast.func) ->
               Hashtbl.find_opt owner (Ast.qualified_name f))
             defined)
      in
      let touched_by =
        (* global -> set of modules touching it *)
        let t = Hashtbl.create 64 in
        List.iter
          (fun (f : Ast.func) ->
            let q = Ast.qualified_name f in
            match (Hashtbl.find_opt owner q, Hashtbl.find_opt directs q) with
            | Some m, Some d ->
              SS.iter
                (fun g ->
                  let cur = Option.value ~default:SS.empty (Hashtbl.find_opt t g) in
                  Hashtbl.replace t g (SS.add m cur))
                (SS.union d.dr_reads d.dr_writes)
            | _ -> ())
          defined;
        t
      in
      let declared_in =
        (* module -> count of mutable globals its files declare *)
        let t = Hashtbl.create 16 in
        List.iter
          (fun (pf : Project.parsed_file) ->
            let m = pf.Project.file.Project.modname in
            List.iter
              (fun (g : Ast.global_var) ->
                if not (g.Ast.g_const || g.Ast.g_extern) then
                  Hashtbl.replace t m
                    (1 + Option.value ~default:0 (Hashtbl.find_opt t m)))
              (Ast.globals_of_tu pf.Project.tu))
          files;
        t
      in
      let coupling =
        List.map
          (fun m ->
            let fns =
              List.filter
                (fun (f : Ast.func) ->
                  Hashtbl.find_opt owner (Ast.qualified_name f) = Some m)
                defined
            in
            let reads, writes =
              List.fold_left
                (fun (r, w) (f : Ast.func) ->
                  match Hashtbl.find_opt directs (Ast.qualified_name f) with
                  | Some d -> (SS.union r d.dr_reads, SS.union w d.dr_writes)
                  | None -> (r, w))
                (SS.empty, SS.empty) fns
            in
            let touched = SS.union reads writes in
            let shared =
              SS.filter
                (fun g ->
                  match Hashtbl.find_opt touched_by g with
                  | Some ms -> SS.cardinal ms > 1
                  | None -> false)
                touched
            in
            {
              mc_module = m;
              mc_functions = List.length fns;
              mc_globals_declared =
                Option.value ~default:0 (Hashtbl.find_opt declared_in m);
              mc_globals_read = SS.cardinal reads;
              mc_globals_written = SS.cardinal writes;
              mc_shared = SS.cardinal shared;
            })
          module_names
      in
      let summaries =
        List.sort (fun a b -> compare a.s_name b.s_name)
          (Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])
      in
      let max_call_depth =
        List.fold_left (fun acc s -> depth_max acc s.s_call_depth) (Finite 0)
          summaries
      in
      let max_stack_words =
        List.fold_left (fun acc s -> depth_max acc s.s_stack_words) (Finite 0)
          summaries
      in
      Telemetry.add "interproc.functions" (List.length summaries);
      Telemetry.add "interproc.sccs" (Array.length sccs);
      Telemetry.add "interproc.levels" (Array.length levels);
      Telemetry.add "interproc.uninit_flows" (List.length uninit_flows);
      let cycles = Callgraph.recursion_cycles graph in
      (* Journal the whole-program conclusions with their witnesses: the
         cycle itself for recursion, the decl -> call -> use chain for
         cross-call uninit, the witness cycle for unbounded depth.
         [of_files] runs more than once per audit (the IP-1 rule and the
         metrics walk both call it); the journal dedups by content id,
         so the repeats collapse. *)
      let cycle_steps cycle =
        match cycle with
        | [ q ] -> [ Provenance.step "call" "%s calls itself directly" q ]
        | _ :: _ :: _ ->
          List.mapi
            (fun i callee ->
              Provenance.step "call" "%s calls %s" (List.nth cycle i) callee)
            (List.tl cycle @ [ List.hd cycle ])
        | [] -> []
      in
      List.iter
        (fun cycle ->
          if cycle <> [] then
            Provenance.record
              (Provenance.make ~kind:"interproc" ~analysis:"recursion-cycle"
                 ~message:
                   (Printf.sprintf "recursion cycle: %s"
                      (String.concat " -> " (cycle @ [ List.hd cycle ])))
                 ~witness:(cycle_steps cycle) ()))
        cycles;
      List.iter
        (fun (f : uninit_flow) ->
          Provenance.record
            (Provenance.make ~kind:"interproc" ~analysis:"cross-call-uninit"
               ~loc:f.ip_use_loc
               ~message:
                 (Printf.sprintf
                    "%s may be read uninitialized in %s across the call to %s"
                    f.ip_var f.ip_function f.ip_callee)
               ~witness:
                 [
                   Provenance.step ~loc:f.ip_decl_loc "decl"
                     "%s declared without an initializer in %s" f.ip_var
                     f.ip_function;
                   Provenance.step ~loc:f.ip_call_loc "call"
                     "&%s passed to %s, whose summary never initializes the pointee"
                     f.ip_var f.ip_callee;
                   Provenance.step ~loc:f.ip_use_loc "use"
                     "%s read here while still uninitialized" f.ip_var;
                 ]
               ()))
        uninit_flows;
      (match max_call_depth with
       | Finite _ -> ()
       | Unbounded cycle ->
         Provenance.record
           (Provenance.make ~kind:"interproc" ~analysis:"unbounded-depth"
              ~message:
                (Printf.sprintf
                   "worst-case call depth is unbounded (witness cycle: %s)"
                   (String.concat " -> " cycle))
              ~witness:(cycle_steps cycle) ()));
      {
        graph;
        summaries;
        cycles;
        n_sccs = Array.length sccs;
        n_levels = Array.length levels;
        max_call_depth;
        max_stack_words;
        coupling;
        uninit_flows;
        globals_total = SS.cardinal globals;
      })

let analyze (parsed : Project.parsed) = of_files parsed.Project.files

let find_summary t name =
  List.find_opt (fun s -> s.s_name = name) t.summaries
