(** Whole-program summary engine: bottom-up per-function summaries over
    the SCC condensation of the call graph, level-parallel over the
    domain pool with the jobs=1 topological walk as the exact oracle. *)

open Cfront
module SS : Set.S with type elt = string

type depth =
  | Finite of int
  | Unbounded of string list  (** witness: one recursion cycle *)

type func_summary = {
  s_name : string;  (** qualified function name *)
  s_module : string;  (** module owning the definition *)
  s_scc : int;  (** SCC index, topological (callers first) *)
  s_level : int;  (** 0 = leaf component of the condensation *)
  s_recursive : bool;  (** member of a recursion cycle *)
  s_globals_read : SS.t;  (** transitive: own reads + callees' *)
  s_globals_written : SS.t;  (** transitive, address-taken counts as write *)
  s_does_io : bool;  (** transitively reaches an IO routine *)
  s_allocates : bool;  (** transitively reaches new/delete/malloc/free *)
  s_calls_unknown : bool;
      (** has (or reaches) an unresolved, ambiguous or indirect call *)
  s_pure : bool;
      (** no transitive writes/IO/allocation and no unknown callees *)
  s_call_depth : depth;  (** worst-case call-chain depth, leaf = 1 *)
  s_stack_words : depth;  (** worst-case stack bound, in abstract words *)
  s_unresolved_sites : int;  (** own unresolved/ambiguous/indirect sites *)
  s_param_inits : (string * bool) list;
      (** per parameter, in declaration order: may the callee initialize
          the pointee?  [false] only when the parameter is provably
          ignored by the body (and the function is not recursive) *)
}

type module_coupling = {
  mc_module : string;
  mc_functions : int;
  mc_globals_declared : int;  (** mutable globals declared in the module *)
  mc_globals_read : int;  (** distinct mutable globals read directly *)
  mc_globals_written : int;
  mc_shared : int;  (** of those, touched by at least one other module *)
}

(** An uninitialized value flowing through a call: [&x] was passed to a
    callee that provably never initializes the pointee, and [x] was read
    afterwards while still possibly uninitialized.  Disjoint from the
    intraprocedural 9.1 findings by construction. *)
type uninit_flow = {
  ip_var : string;
  ip_function : string;  (** caller containing the flow *)
  ip_callee : string;  (** callee that failed to initialize *)
  ip_call_loc : Loc.t;
  ip_use_loc : Loc.t;
  ip_decl_loc : Loc.t;
}

type t = {
  graph : Callgraph.t;
  summaries : func_summary list;  (** sorted by qualified name *)
  cycles : string list list;  (** recursion cycles, SCC order *)
  n_sccs : int;
  n_levels : int;
  max_call_depth : depth;
  max_stack_words : depth;
  coupling : module_coupling list;  (** sorted by module name *)
  uninit_flows : uninit_flow list;  (** sorted by (file, line, col, var) *)
  globals_total : int;  (** mutable globals in the program *)
}

val depth_max : depth -> depth -> depth
val depth_add : depth -> int -> depth
val render_depth : depth -> string

(** Mutable (non-const, non-extern) globals by simple name. *)
val mutable_globals_of_files : Project.parsed_file list -> SS.t

(** Run the engine over parsed files / a parsed project. *)
val of_files : Project.parsed_file list -> t

val analyze : Project.parsed -> t
val find_summary : t -> string -> func_summary option
