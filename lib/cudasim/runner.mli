(** cuda4cpu-style execution: run CUDA translation units on the CPU under
    coverage instrumentation — the paper's Section 3.3 methodology for
    measuring GPU code coverage with CPU tooling. *)

type result = {
  exit_value : (Coverage.Value.t, string) Result.t;
  output : string;  (** everything the program printed *)
  files : Coverage.Collector.file_coverage list;  (** for [measured] paths *)
  census : Census.t;  (** CUDA usage across all units *)
}

(** Parse-free entry point: execute the given units from [entry] and
    score coverage for the files named in [measured]; other files (test
    drivers) execute but are not scored.  [origin] names the run for
    first-covering attribution (default ["run:<entry>"]).  [engine]
    selects the tree-walking oracle (default) or the bytecode engine;
    the two are observationally identical
    ([test/test_bytecode_diff.ml]). *)
val run :
  ?origin:string ->
  ?engine:Coverage.Scenario.engine ->
  ?entry:string ->
  measured:string list ->
  Cfront.Ast.tu list ->
  result
