(** cuda4cpu-style execution: run CUDA translation units on the CPU under
    coverage instrumentation.

    This is the paper's Section 3.3 methodology: since no qualified
    coverage tool exists for GPU code, the kernels are executed on the CPU
    (the interpreter's kernel-launch loop serializes the grid) and the CPU
    coverage tooling applies unchanged. *)

type result = {
  exit_value : (Coverage.Value.t, string) Result.t;
  output : string;
  files : Coverage.Collector.file_coverage list;
  census : Census.t;
}

(** Parse, execute from [entry], and score coverage for the files in
    [measured] (paths); other files (test drivers) run but are not
    scored.  [engine] picks the interpreter ([Tree] by default, keeping
    the audited metrics pipeline on the oracle); both engines produce
    identical coverage, output and exit values. *)
let run ?origin ?(engine = Coverage.Scenario.Tree) ?(entry = "main") ~measured
    (tus : Cfront.Ast.tu list) =
  Telemetry.with_span ~cat:"coverage" "coverage"
    ~attrs:[ ("entry", entry); ("tus", string_of_int (List.length tus));
             ("engine", Coverage.Scenario.engine_name engine) ]
  @@ fun () ->
  let origin = match origin with Some o -> o | None -> "run:" ^ entry in
  let collector = Coverage.Collector.create ~origin () in
  let env =
    Coverage.Interp.create
      ~hooks:(Coverage.Interp.telemetry_hooks ~base:(Coverage.Collector.hooks collector) ())
      ()
  in
  let exit_value =
    match engine with
    | Coverage.Scenario.Tree -> Coverage.Interp.run env tus ~entry ~args:[]
    | Coverage.Scenario.Bytecode ->
      let prog = Coverage.Compile.compile tus in
      Coverage.Exec.run env prog ~entry ~args:[]
  in
  let files =
    List.filter_map
      (fun (tu : Cfront.Ast.tu) ->
        if List.mem tu.Cfront.Ast.tu_file measured then
          Some
            (Coverage.Collector.score_file collector ~file:tu.Cfront.Ast.tu_file
               (Coverage.Instrument.of_tu tu))
        else None)
      tus
  in
  let census =
    List.fold_left (fun acc tu -> Census.add acc (Census.of_tu tu)) Census.zero tus
  in
  { exit_value; output = Coverage.Interp.output env; files; census }
