(** Benchmark harness: regenerates every table and figure of the paper,
    micro-benchmarks the analysis kernels with Bechamel, and (with
    [--out]) writes a machine-readable BENCH_*.json performance record.

    Usage:
      dune exec bench/main.exe -- [OPTIONS] [NAMES]

    NAMES select experiments (default: all), among: table1 table2 table3
    fig3 fig4 fig5 fig6 fig7 fig8a fig8b observations ... micro.  An
    unknown name aborts with the valid list before anything runs.

    Options:
      --scale small|full   corpus scale for the audit (default full)
      --seed N             generator seed (default 2019)
      --jobs LIST          comma-separated worker-domain counts, e.g. 1,4;
                           each selected experiment is re-run per value on
                           a fresh audit (default: ADCHECK_JOBS, else 1)
      --out FILE           write per-experiment wall time + telemetry
                           counter snapshots as JSON (e.g. BENCH_1.json)
      --metrics FILE       write the flight-recorder adcheck-metrics/1
                           record of the whole run (counters, latency
                           histograms, GC phases, pool stats); compare
                           records with `adcheck bench-diff`

    Experiment ids follow DESIGN.md's per-experiment index. *)

let gpu = Gpuperf.Device.titan_v
let cpu = Gpuperf.Device.xeon_e5

let bench_seed = ref 2019
let bench_scale = ref `Full

(* The audited corpus and all derived artifacts, computed once per jobs
   setting (reads the --scale/--seed refs, which are set before the
   first force).  A ref-of-lazy rather than a plain lazy so the --jobs
   sweep can discard it and re-audit under a different domain count. *)
let fresh_audit () =
  lazy
    (let ratios =
       List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device:gpu)
       @ List.map (fun (l, _, r) -> (l, r)) (Gpuperf.Suites.conv_comparison ~device:gpu)
     in
     let specs =
       match !bench_scale with
       | `Full -> Corpus.Apollo_profile.full
       | `Small -> Corpus.Apollo_profile.small
     in
     Iso26262.Audit.run ~seed:!bench_seed ~specs ~open_vs_closed:ratios ())

let audit_cell = ref (fresh_audit ())
let reset_audit () = audit_cell := fresh_audit ()
let force_audit () = Lazy.force !audit_cell

let metrics () = (force_audit ()).Iso26262.Audit.metrics

let heading title =
  Printf.printf "\n================ %s ================\n\n" title

(* ------------------------------------------------------------------ *)
(* Experiments                                                          *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  heading "Table 1 (paper) - modeling and coding guidelines";
  print_string
    (Iso26262.Report.render_findings
       ~title:"ISO 26262-6 Table 1 vs measured verdicts"
       (force_audit ()).Iso26262.Audit.coding)

let run_table2 () =
  heading "Table 2 (paper) - software architectural design";
  print_string
    (Iso26262.Report.render_findings
       ~title:"ISO 26262-6 Table 3 vs measured verdicts"
       (force_audit ()).Iso26262.Audit.architecture);
  let tbl =
    Util.Table.make ~title:"Component metrics behind the verdicts"
      ~header:[ "component"; "LOC"; "files"; "functions"; "interface"; "fan-in";
                "fan-out"; "cohesion"; "threads" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right;
                Util.Table.Right; Util.Table.Right; Util.Table.Right;
                Util.Table.Right; Util.Table.Right; Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (c : Metrics.Architecture.component) ->
        Util.Table.add_row tbl
          [ c.Metrics.Architecture.name;
            string_of_int c.Metrics.Architecture.loc;
            string_of_int c.Metrics.Architecture.n_files;
            string_of_int c.Metrics.Architecture.n_functions;
            string_of_int c.Metrics.Architecture.interface_size;
            string_of_int c.Metrics.Architecture.fan_in;
            string_of_int c.Metrics.Architecture.fan_out;
            Util.Table.fmt_float c.Metrics.Architecture.cohesion;
            (if c.Metrics.Architecture.uses_threads then "yes" else "no") ])
      tbl (metrics ()).Iso26262.Project_metrics.architecture
  in
  print_string (Util.Table.render tbl)

let run_table3 () =
  heading "Table 3 (paper) - software unit design and implementation";
  print_string
    (Iso26262.Report.render_findings
       ~title:"ISO 26262-6 Table 8 vs measured verdicts"
       (force_audit ()).Iso26262.Audit.unit_design)

let run_fig3 () =
  heading "Figure 3 - complexity, LOC and functions per Apollo module";
  print_string (Iso26262.Report.render_module_summaries (metrics ()));
  let m = metrics () in
  Printf.printf
    "total: %d physical LOC, %d functions, %d with CC>10 (paper: >220k LOC, 554 functions)\n\n"
    m.Iso26262.Project_metrics.total_loc m.Iso26262.Project_metrics.total_functions
    m.Iso26262.Project_metrics.over10;
  print_string
    (Util.Chart.render ~value_fmt:(Printf.sprintf "%.0f")
       ~title:"functions with cyclomatic complexity > 10 per module"
       (List.map
          (fun (mm : Iso26262.Project_metrics.module_metrics) ->
            { Util.Chart.label = mm.Iso26262.Project_metrics.modname;
              value =
                float_of_int
                  mm.Iso26262.Project_metrics.complexity.Metrics.Complexity.over_10 })
          m.Iso26262.Project_metrics.modules))

let run_fig4 () =
  heading "Figure 4 - CUDA code structure of the object detection module";
  let c = (metrics ()).Iso26262.Project_metrics.cuda in
  let tbl =
    Util.Table.make ~title:"CUDA usage census (perception module kernels)"
      ~header:[ "metric"; "value" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right ] ()
  in
  let rows =
    [ ("__global__ kernels", c.Cudasim.Census.kernels);
      ("__device__ functions", c.Cudasim.Census.device_functions);
      ("kernel launches", c.Cudasim.Census.kernel_launches);
      ("cudaMalloc call sites", c.Cudasim.Census.cuda_mallocs);
      ("cudaMemcpy call sites", c.Cudasim.Census.cuda_memcpys);
      ("cudaFree call sites", c.Cudasim.Census.cuda_frees);
      ("kernel parameters", c.Cudasim.Census.kernel_params);
      ("  of which raw pointers", c.Cudasim.Census.kernel_pointer_params);
      ("kernels without bound check", c.Cudasim.Census.kernels_without_bound_check) ]
  in
  let tbl =
    List.fold_left
      (fun tbl (k, v) -> Util.Table.add_row tbl [ k; string_of_int v ])
      tbl rows
  in
  print_string (Util.Table.render tbl);
  Printf.printf
    "pointer parameter ratio: %.0f%% - the scale_bias_gpu pattern of Figure 4:\n\
     host and device pointer pairs, dynamically allocated, are intrinsic to CUDA.\n"
    (100.0 *. Cudasim.Census.pointer_param_ratio c)

let run_fig5 () =
  heading "Figure 5 - statement/branch/MC/DC coverage of object detection (YOLO)";
  print_string
    (Iso26262.Report.render_coverage
       ~title:"RapiCover-equivalent coverage under the real-scenario tests"
       (force_audit ()).Iso26262.Audit.yolo_coverage);
  print_string "paper: averages 83% / 75% / 61%; minima 19% / 37% / 10%\n\n";
  print_string
    (Util.Chart.render_grouped ~value_fmt:(Printf.sprintf "%.0f%%")
       ~title:"per-file coverage (statement / branch / MC/DC)"
       (List.map
          (fun (f : Coverage.Collector.file_coverage) ->
            ( f.Coverage.Collector.file,
              [ { Util.Chart.label = "stmt"; value = f.Coverage.Collector.stmt_pct };
                { Util.Chart.label = "branch"; value = f.Coverage.Collector.branch_pct };
                { Util.Chart.label = "mcdc"; value = f.Coverage.Collector.mcdc_pct } ] ))
          (force_audit ()).Iso26262.Audit.yolo_coverage))

let run_fig6 () =
  heading "Figure 6 - CUDA stencil kernels executed on the CPU (cuda4cpu)";
  print_string
    (Iso26262.Report.render_coverage ~title:"2D and 3D stencil coverage"
       (force_audit ()).Iso26262.Audit.stencil_coverage);
  print_string "paper: full statement or branch coverage is not achieved on either kernel\n"

let run_fig7 () =
  heading "Figure 7 - Apollo object detection: open- vs closed-source libraries";
  let rows = Gpuperf.Yolo_bench.run ~gpu ~cpu () in
  let tbl =
    Util.Table.make
      ~title:"YOLOv2 inference under each library implementation"
      ~header:[ "implementation"; "source"; "device"; "ms/frame"; "fps"; "vs cuDNN" ]
      ~aligns:[ Util.Table.Left; Util.Table.Left; Util.Table.Left;
                Util.Table.Right; Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (r : Gpuperf.Yolo_bench.row) ->
        Util.Table.add_row tbl
          [ r.Gpuperf.Yolo_bench.impl;
            (if r.Gpuperf.Yolo_bench.closed_source then "closed" else "open");
            r.Gpuperf.Yolo_bench.device_name;
            Util.Table.fmt_float r.Gpuperf.Yolo_bench.total_ms;
            Util.Table.fmt_float ~decimals:1 r.Gpuperf.Yolo_bench.fps;
            Util.Table.fmt_float r.Gpuperf.Yolo_bench.vs_baseline ^ "x" ])
      tbl rows
  in
  print_string (Util.Table.render tbl);
  print_string
    "paper: CUTLASS/ISAAC competitive with cuBLAS/cuDNN; CPU BLAS two orders of magnitude slower\n"

let run_fig8a () =
  heading "Figure 8(a) - CUTLASS vs cuBLAS on GEMM workloads";
  let tbl =
    Util.Table.make ~title:"relative performance (>1 means CUTLASS faster)"
      ~header:[ "workload"; "CUTLASS/cuBLAS" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right ] ()
  in
  let rows = Gpuperf.Suites.gemm_comparison ~device:gpu in
  let tbl =
    List.fold_left
      (fun tbl (label, ratio) ->
        Util.Table.add_row tbl [ label; Util.Table.fmt_float ratio ])
      tbl rows
  in
  print_string (Util.Table.render tbl);
  print_string
    (Util.Chart.render ~value_fmt:(Printf.sprintf "%.2f")
       ~title:"relative performance (1.0 = parity with cuBLAS)"
       (List.map (fun (l, r) -> { Util.Chart.label = l; value = r }) rows));
  Printf.printf "geometric mean: %.2f (paper: comparable performance)\n"
    (Util.Stats.geomean (List.map snd rows))

let run_fig8b () =
  heading "Figure 8(b) - ISAAC vs cuDNN on convolution workloads";
  let tbl =
    Util.Table.make ~title:"relative performance (>1 means ISAAC faster)"
      ~header:[ "workload"; "domain"; "ISAAC/cuDNN" ]
      ~aligns:[ Util.Table.Left; Util.Table.Left; Util.Table.Right ] ()
  in
  let rows = Gpuperf.Suites.conv_comparison ~device:gpu in
  let tbl =
    List.fold_left
      (fun tbl (label, domain, ratio) ->
        Util.Table.add_row tbl [ label; domain; Util.Table.fmt_float ratio ])
      tbl rows
  in
  print_string (Util.Table.render tbl);
  print_string
    (Util.Chart.render ~value_fmt:(Printf.sprintf "%.2f")
       ~title:"relative performance (1.0 = parity with cuDNN)"
       (List.map (fun (l, _, r) -> { Util.Chart.label = l; value = r }) rows));
  Printf.printf "geometric mean: %.2f (paper: very competitive across domains)\n"
    (Util.Stats.geomean (List.map (fun (_, _, r) -> r) rows))

let run_observations () =
  heading "Observations 1-14";
  let a = force_audit () in
  print_string (Iso26262.Report.render_observations a.Iso26262.Audit.observations);
  print_string (Iso26262.Report.render_compliance (Iso26262.Audit.all_findings a))


let run_fig1 () =
  heading "Figure 1 - the AD pipeline";
  print_string (Iso26262.Taxonomy.render_pipeline ())

let run_fig2 () =
  heading "Figure 2 - perception library taxonomy (open vs closed source)";
  print_string (Iso26262.Taxonomy.render_taxonomy ());
  Printf.printf "closed-source dependencies on the critical path: %d\n"
    (Iso26262.Taxonomy.closed_count Iso26262.Taxonomy.taxonomy)

let run_halstead () =
  heading "Extension - Halstead metrics and maintainability index per module";
  let parsed = (force_audit ()).Iso26262.Audit.parsed in
  let tbl =
    Util.Table.make ~title:"Halstead software science + SEI maintainability index"
      ~header:[ "module"; "vocabulary"; "length"; "volume"; "difficulty"; "est. bugs"; "MI" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
                Util.Table.Right; Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl modname ->
        let pfs = Cfront.Project.parsed_files_of_module parsed modname in
        let r = Metrics.Halstead.report_of_module ~modname pfs in
        let h = r.Metrics.Halstead.halstead in
        Util.Table.add_row tbl
          [ modname;
            string_of_int h.Metrics.Halstead.vocabulary;
            string_of_int h.Metrics.Halstead.length;
            Printf.sprintf "%.0f" h.Metrics.Halstead.volume;
            Printf.sprintf "%.1f" h.Metrics.Halstead.difficulty;
            Printf.sprintf "%.1f" h.Metrics.Halstead.estimated_bugs;
            Printf.sprintf "%.1f" r.Metrics.Halstead.mi ])
      tbl
      (Cfront.Project.module_names parsed.Cfront.Project.project)
  in
  print_string (Util.Table.render tbl)

let run_brook () =
  heading "Extension - Brook Auto portability of the CUDA kernels (cf. paper ref [14])";
  let parsed = (force_audit ()).Iso26262.Audit.parsed in
  let reports = Cudasim.Brook_auto.of_files parsed.Cfront.Project.files in
  let s = Cudasim.Brook_auto.summarize reports in
  Printf.printf
    "of %d kernels: %d pure stream (portable as-is), %d need gather streams, %d not portable\n\n"
    s.Cudasim.Brook_auto.total s.Cudasim.Brook_auto.pure_stream
    s.Cudasim.Brook_auto.needs_gather s.Cudasim.Brook_auto.not_portable;
  List.iteri
    (fun i (r : Cudasim.Brook_auto.report) ->
      if i < 12 then
        Printf.printf "  %-55s %s\n" r.Cudasim.Brook_auto.kernel
          (Cudasim.Brook_auto.classification_name r.Cudasim.Brook_auto.classification))
    reports;
  print_string
    "\nThe stream subset makes the certification check the paper says is impossible\n\
     for raw CUDA (Observation 3) mechanically decidable.\n"

let run_ablations () =
  heading "Ablations - what each modelling/measurement choice contributes";
  (* 1. GPU model refinements *)
  Printf.printf "GPU model (Figure 7/8 sensitivity):\n";
  List.iter
    (fun (r : Gpuperf.Ablation.row) ->
      Printf.printf "  %-36s fig8a=%s fig8b=%s  yolo=%.2f ms\n"
        r.Gpuperf.Ablation.label
        (match r.Gpuperf.Ablation.fig8a_geomean with
         | Some g -> Printf.sprintf "%.2f" g
         | None -> "  - ")
        (match r.Gpuperf.Ablation.fig8b_geomean with
         | Some g -> Printf.sprintf "%.2f" g
         | None -> "  - ")
        r.Gpuperf.Ablation.yolo_ms)
    (Gpuperf.Ablation.run ~device:gpu);
  (* 2. MC/DC pairing discipline *)
  let tus = Corpus.Yolo_src.parse_all () in
  let col = Coverage.Collector.create () in
  let env = Coverage.Interp.create ~hooks:(Coverage.Collector.hooks col) () in
  (match Coverage.Interp.run env tus ~entry:Corpus.Yolo_src.entry ~args:[] with
   | Ok _ -> ()
   | Error e -> Printf.printf "  (yolo run failed: %s)\n" e);
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let avg mode =
    let files =
      List.filter_map
        (fun (tu : Cfront.Ast.tu) ->
          if List.mem tu.Cfront.Ast.tu_file measured then
            Some
              (Coverage.Collector.score_file ~mcdc_mode:mode col
                 ~file:tu.Cfront.Ast.tu_file (Coverage.Instrument.of_tu tu))
          else None)
        tus
    in
    let _, _, mcdc = Coverage.Collector.averages files in
    mcdc
  in
  Printf.printf "\nMC/DC pairing discipline (Figure 5 sensitivity):\n";
  Printf.printf "  masking (short-circuit aware, default)  MC/DC avg = %.1f%%\n" (avg `Masking);
  Printf.printf "  strict unique-cause                     MC/DC avg = %.1f%%\n" (avg `Strict);
  (* 3. cyclomatic-complexity counting convention *)
  let fns = Cfront.Project.all_functions (force_audit ()).Iso26262.Audit.parsed in
  let over10 ~ssc =
    List.length
      (List.filter
         (fun (c : Metrics.Complexity.func_cc) -> c.Metrics.Complexity.cc > 10)
         (Metrics.Complexity.of_functions ~count_short_circuit:ssc fns))
  in
  Printf.printf "\nComplexity counting convention (Figure 3 sensitivity):\n";
  Printf.printf "  Lizard convention (with && || ?:)       functions over CC 10 = %d\n"
    (over10 ~ssc:true);
  Printf.printf "  plain McCabe (control statements only)  functions over CC 10 = %d\n"
    (over10 ~ssc:false)


let run_wcet () =
  heading "Extension - WCET analyzability (the timing-analysis cost of Observation 1)";
  let parsed = (force_audit ()).Iso26262.Audit.parsed in
  let tbl =
    Util.Table.make
      ~title:"static WCET-analyzability per module (standard timing analysis)"
      ~header:[ "module"; "functions"; "analyzable"; "parametric"; "unanalyzable"; "% analyzable" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
                Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl modname ->
        let pfs = Cfront.Project.parsed_files_of_module parsed modname in
        let s = Metrics.Wcet.summarize (Metrics.Wcet.of_functions (Cfront.Project.defined_functions pfs)) in
        Util.Table.add_row tbl
          [ modname;
            string_of_int s.Metrics.Wcet.total;
            string_of_int s.Metrics.Wcet.analyzable;
            string_of_int s.Metrics.Wcet.parametric;
            string_of_int s.Metrics.Wcet.unanalyzable;
            Printf.sprintf "%.1f%%"
              (100.0 *. float_of_int s.Metrics.Wcet.analyzable
               /. float_of_int (Stdlib.max 1 s.Metrics.Wcet.total)) ])
      tbl
      (Cfront.Project.module_names parsed.Cfront.Project.project)
  in
  print_string (Util.Table.render tbl);
  print_string
    "parametric bounds need input-range evidence; unanalyzable functions need redesign\n\
     before any WCET bound exists - the verification cost Observation 1 warns about.\n"

let run_frameworks () =
  heading "Extension - cross-framework adherence (Section 2: conclusions hold for all AD frameworks)";
  let tbl =
    Util.Table.make ~title:"ISO 26262-6 adherence across AD frameworks"
      ~header:[ "framework"; "LOC"; "functions"; "CC>10"; "casts"; "globals";
                "ASIL-D pass"; "binding" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right; Util.Table.Right; Util.Table.Right;
                Util.Table.Right; Util.Table.Right; Util.Table.Right; Util.Table.Right ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (fw : Corpus.Other_frameworks.framework) ->
        let project =
          Corpus.Generator.generate ~seed:fw.Corpus.Other_frameworks.fw_seed
            fw.Corpus.Other_frameworks.fw_specs
        in
        let parsed = Cfront.Project.parse project in
        let m = Iso26262.Project_metrics.of_parsed parsed in
        let findings = Iso26262.Assess.assess_all m in
        let passed, binding = Iso26262.Assess.compliance_at ~asil:Iso26262.Asil.D findings in
        Util.Table.add_row tbl
          [ fw.Corpus.Other_frameworks.fw_name;
            string_of_int m.Iso26262.Project_metrics.total_loc;
            string_of_int m.Iso26262.Project_metrics.total_functions;
            string_of_int m.Iso26262.Project_metrics.over10;
            string_of_int m.Iso26262.Project_metrics.explicit_casts;
            string_of_int m.Iso26262.Project_metrics.globals_total;
            string_of_int passed;
            string_of_int binding ])
      tbl Corpus.Other_frameworks.all_frameworks
  in
  print_string (Util.Table.render tbl);
  print_string
    "the adherence gap is framework-independent: every framework passes only the\n\
     style/naming-class guidelines at ASIL-D, as Section 2 of the paper claims.\n"


let run_faults () =
  heading "Extension - fault injection: the dynamic cost of missing defensive code (Obs 6)";
  let outcomes = Corpus.Fault_src.run_all () in
  let tbl =
    Util.Table.make ~title:"invalid-input scenarios against the YOLO entry points"
      ~header:[ "scenario"; "expectation"; "result"; "as expected"; "detail" ]
      ~aligns:[ Util.Table.Left; Util.Table.Left; Util.Table.Left; Util.Table.Left;
                Util.Table.Left ]
      ()
  in
  let tbl =
    List.fold_left
      (fun tbl (o : Corpus.Fault_src.outcome) ->
        Util.Table.add_row tbl
          [ o.Corpus.Fault_src.scenario.Corpus.Fault_src.sc_name;
            (match o.Corpus.Fault_src.scenario.Corpus.Fault_src.sc_expect with
             | Corpus.Fault_src.Expect_fault -> "fault (no validation)"
             | Corpus.Fault_src.Expect_survive -> "survive (validated)");
            (if o.Corpus.Fault_src.faulted then "FAULT" else "ok");
            (if o.Corpus.Fault_src.as_expected then "yes" else "NO");
            o.Corpus.Fault_src.detail ])
      tbl outcomes
  in
  print_string (Util.Table.render tbl);
  let realized, expected, as_expected, total = Corpus.Fault_src.summary outcomes in
  Printf.printf
    "%d of %d undefended scenarios fault; %d of %d scenarios behave as the static\n\
     defensive-implementation analysis (Table 1 item 4) predicts.\n"
    realized expected as_expected total


let run_testgen () =
  heading "Extension - gap-driven test generation (Observation 10: additional test cases)";
  let tus = Corpus.Yolo_src.parse_all () in
  let measured = List.map fst Corpus.Yolo_src.measured_files in
  let r = Coverage.Testgen.close_gaps ~entry:Corpus.Yolo_src.entry ~measured tus in
  Printf.printf "original real-scenario tests: %.1f%% statement, %.1f%% branch\n"
    r.Coverage.Testgen.before_stmt r.Coverage.Testgen.before_branch;
  Printf.printf "with %d synthesized probes:   %.1f%% statement, %.1f%% branch\n\n"
    (Util.Stats.sum_int
       (List.map (fun p -> List.length p.Coverage.Testgen.args) r.Coverage.Testgen.plans))
    r.Coverage.Testgen.after_stmt r.Coverage.Testgen.after_branch;
  List.iter
    (fun (p : Coverage.Testgen.call_plan) ->
      Printf.printf "  %-28s %2d probes  (%s)\n" p.Coverage.Testgen.target
        (List.length p.Coverage.Testgen.args) p.Coverage.Testgen.reason)
    r.Coverage.Testgen.plans;
  Printf.printf
    "\nthe remaining gap needs pointer/struct inputs - the part that stays manual.\n"


let run_traceability () =
  heading "Extension - safety-requirement traceability matrix";
  let a = force_audit () in
  let traces = Iso26262.Traceability.trace (Iso26262.Audit.all_findings a) in
  print_string (Iso26262.Traceability.render traces);
  let missing = Iso26262.Traceability.unallocated_requirements a.Iso26262.Audit.metrics in
  if missing = [] then
    print_string "allocation check: every requirement maps to existing components\n"
  else
    List.iter
      (fun (sr : Iso26262.Traceability.software_requirement) ->
        Printf.printf "allocation defect: %s references missing components\n"
          sr.Iso26262.Traceability.sr_id)
      missing


let run_scheduling () =
  heading "Extension - schedulability evidence for Table 2 item 6";
  (* perception WCET from the Figure 7 model: the deployed library on the
     embedded DRIVE PX2 target *)
  let rows =
    Gpuperf.Yolo_bench.run ~gpu:Gpuperf.Device.drive_px2_gpu ~cpu:Gpuperf.Device.xeon_e5 ()
  in
  let perception_wcet =
    match List.find_opt (fun r -> r.Gpuperf.Yolo_bench.impl = "ISAAC") rows with
    | Some r -> r.Gpuperf.Yolo_bench.total_ms *. 1.3  (* WCET margin over mean *)
    | None -> 30.0
  in
  Printf.printf "perception WCET from Figure 7 model (ISAAC on DRIVE PX2, +30%% margin): %.1f ms\n\n"
    perception_wcet;
  let a = Iso26262.Scheduling.analyze (Iso26262.Scheduling.ad_task_set ~perception_wcet_ms:perception_wcet ()) in
  print_string (Iso26262.Scheduling.render a);
  (* the counter-case: CPU BLAS perception blows every budget *)
  let cpu_wcet =
    match List.find_opt (fun r -> r.Gpuperf.Yolo_bench.impl = "OpenBLAS") rows with
    | Some r -> r.Gpuperf.Yolo_bench.total_ms
    | None -> 300.0
  in
  let b = Iso26262.Scheduling.analyze (Iso26262.Scheduling.ad_task_set ~perception_wcet_ms:cpu_wcet ()) in
  Printf.printf "\nwith CPU-BLAS perception (%.0f ms): %s - the quantitative form of Figure 7's verdict\n"
    cpu_wcet
    (if b.Iso26262.Scheduling.all_schedulable then "still schedulable"
     else "NOT schedulable");
  (* pipeline closed-loop demo: the Figure 1 system actually runs *)
  let tus = Corpus.Pipeline_src.parse_all () in
  let env = Coverage.Interp.create () in
  (match Coverage.Interp.run env tus ~entry:Corpus.Pipeline_src.entry ~args:[] with
   | Ok v ->
     Printf.printf "\nmini AD pipeline closed-loop run (12 ticks): %s collisions\n%s"
       (Coverage.Value.to_string v) (Coverage.Interp.output env)
   | Error e -> Printf.printf "pipeline run failed: %s\n" e)


let run_scenarios () =
  heading "Scenario-parallel coverage - full set (real scenarios + faults + testgen probes)";
  let set = Corpus.Scenario_set.full () in
  let n_scenarios = List.length set.Corpus.Scenario_set.scenarios in
  (* Time just the scenario execution (the coverage phase proper); set
     construction above includes the baseline run the gap planner needs. *)
  let t0 = Telemetry.now_us () in
  let outcomes = Coverage.Scenario.run_all set.Corpus.Scenario_set.scenarios in
  let coverage_ms = (Telemetry.now_us () -. t0) /. 1e3 in
  Telemetry.set_gauge "bench.scenarios.count" (float_of_int n_scenarios);
  Telemetry.set_gauge "bench.scenarios.coverage_phase_ms" coverage_ms;
  let merged = Coverage.Scenario.merged_collector outcomes in
  let files =
    Coverage.Scenario.score merged ~measured:set.Corpus.Scenario_set.measured
      set.Corpus.Scenario_set.tus
  in
  let stmt, branch, mcdc = Coverage.Collector.averages files in
  Printf.printf
    "%d scenarios on %d worker domain(s): coverage phase %.1f ms\n\
     merged coverage (identical at every --jobs value):\n"
    n_scenarios (Util.Pool.default_jobs ()) coverage_ms;
  print_string
    (Iso26262.Report.render_coverage
       ~title:"merged combined coverage (statement / branch / MC/DC)" files);
  Printf.printf "averages: statement %.1f%%, branch %.1f%%, MC/DC %.1f%%\n"
    stmt branch mcdc

let run_compile () =
  heading "Coverage engines - tree-walking oracle vs compiled bytecode";
  let set = Corpus.Scenario_set.full () in
  let n_scenarios = List.length set.Corpus.Scenario_set.scenarios in
  (* Same scenario set through both engines.  The per-engine step totals
     (env.steps: AST nodes visited vs instructions dispatched) are the
     work-tier counters — independent of jobs and wall clock, gated
     exactly by `adcheck bench-diff`; the wall times are gauges. *)
  let time_engine engine =
    let t0 = Telemetry.now_us () in
    let outcomes =
      Coverage.Scenario.run_all ~engine set.Corpus.Scenario_set.scenarios
    in
    let wall_ms = (Telemetry.now_us () -. t0) /. 1e3 in
    let steps =
      List.fold_left
        (fun acc o -> acc + o.Coverage.Scenario.o_steps)
        0 outcomes
    in
    (outcomes, wall_ms, steps)
  in
  let tree_outcomes, tree_ms, tree_steps =
    time_engine Coverage.Scenario.Tree
  in
  let bc_outcomes, bc_ms, bc_steps =
    time_engine Coverage.Scenario.Bytecode
  in
  Telemetry.incr ~by:tree_steps "coverage.engine.tree.steps";
  Telemetry.incr ~by:bc_steps "coverage.engine.bytecode.steps";
  Telemetry.set_gauge "bench.compile.tree_ms" tree_ms;
  Telemetry.set_gauge "bench.compile.bytecode_ms" bc_ms;
  let fp outcomes =
    Coverage.Collector.fingerprint (Coverage.Scenario.merged_collector outcomes)
  in
  let tree_fp = fp tree_outcomes and bc_fp = fp bc_outcomes in
  if tree_fp <> bc_fp then
    failwith "compile bench: engine fingerprints diverge";
  Printf.printf
    "%d scenarios on %d worker domain(s), merged fingerprints identical\n\
     tree:     %8d steps  %8.1f ms\n\
     bytecode: %8d steps  %8.1f ms\n\
     step ratio %.2fx (bytecode dispatches fewer, coarser instructions)\n"
    n_scenarios
    (Util.Pool.default_jobs ())
    tree_steps tree_ms bc_steps bc_ms
    (float_of_int tree_steps /. float_of_int (max 1 bc_steps))

let run_interproc () =
  heading "Extension - whole-program summary engine (SCC-level parallel bottom-up)";
  let ip = (metrics ()).Iso26262.Project_metrics.interproc in
  print_string (Iso26262.Report.render_interproc ip);
  let r = ip.Interproc.Summary.graph.Cfront.Callgraph.resolution in
  Printf.printf
    "\n%d summaries over %d SCCs in %d bottom-up levels on %d worker domain(s);\n\
     resolution confidence: %d of %d call sites resolved.\n"
    (List.length ip.Interproc.Summary.summaries) ip.Interproc.Summary.n_sccs
    ip.Interproc.Summary.n_levels
    (Util.Pool.default_jobs ())
    r.Cfront.Callgraph.resolved r.Cfront.Callgraph.total_sites

let run_plan () =
  heading "Extension - effort-classified remediation plan (the paper's conclusion, actionable)";
  let a = force_audit () in
  print_string (Iso26262.Cert_plan.render (Iso26262.Cert_plan.build (Iso26262.Audit.all_findings a)))

let run_overhead () =
  heading "Telemetry overhead - the audit with the flight recorder off vs on";
  (* Same fresh audit twice: once with the sink disabled (every recording
     entry point is a single boolean test), once fully enabled.  The
     prior enabled state is restored afterwards so the experiment doesn't
     flip recording off for the rest of the bench run, and the result
    gauges are set after restoring (they'd be dropped while disabled). *)
  let was_enabled = Telemetry.enabled () in
  let time_once enabled =
    Telemetry.set_enabled enabled;
    reset_audit ();
    let t0 = Telemetry.now_us () in
    ignore (force_audit ());
    (Telemetry.now_us () -. t0) /. 1e3
  in
  let disabled_ms = time_once false in
  let enabled_ms = time_once true in
  Telemetry.set_enabled was_enabled;
  reset_audit ();
  let ratio = enabled_ms /. Float.max 1e-9 disabled_ms in
  Telemetry.set_gauge "bench.overhead.disabled_ms" disabled_ms;
  Telemetry.set_gauge "bench.overhead.enabled_ms" enabled_ms;
  Telemetry.set_gauge "bench.overhead.ratio" ratio;
  Printf.printf
    "audit wall time: %.1f ms recorder off, %.1f ms recorder on (%.3fx)\n\
     (spans, counters, histograms, GC phases and pool metrics all recording)\n"
    disabled_ms enabled_ms ratio

(* 7: incremental audit under the content-addressed cache ------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let append_probe (p : Cfront.Project.t) path =
  { p with
    Cfront.Project.p_modules =
      List.map
        (fun (m : Cfront.Project.modul) ->
          { m with
            Cfront.Project.m_files =
              List.map
                (fun (f : Cfront.Project.source_file) ->
                  if f.Cfront.Project.path = path then
                    { f with
                      Cfront.Project.content =
                        f.Cfront.Project.content
                        ^ "\nint bench_incremental_probe() { return 7; }\n" }
                  else f)
                m.Cfront.Project.m_files })
        p.Cfront.Project.p_modules }

let run_incremental () =
  heading "Incremental audit - cold vs warm vs one-file edit under the cache";
  (* A scratch store under the system temp dir, wiped before the passes
     so the hit/miss/invalidate counts are deterministic across bench
     runs, and removed again afterwards. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "adcheck-bench-cache"
  in
  rm_rf dir;
  let store = Cache.open_dir dir in
  let ratios =
    List.map (fun (l, r) -> (l, r)) (Gpuperf.Suites.gemm_comparison ~device:gpu)
    @ List.map (fun (l, _, r) -> (l, r)) (Gpuperf.Suites.conv_comparison ~device:gpu)
  in
  let specs =
    match !bench_scale with
    | `Full -> Corpus.Apollo_profile.full
    | `Small -> Corpus.Apollo_profile.small
  in
  let project = Corpus.Generator.generate ~seed:!bench_seed specs in
  let edited =
    match
      List.find_opt
        (fun (f : Cfront.Project.source_file) -> not f.Cfront.Project.header)
        (Cfront.Project.all_files project)
    with
    | Some f -> append_probe project f.Cfront.Project.path
    | None -> project
  in
  let was_enabled = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_global None;
      Telemetry.set_enabled was_enabled;
      rm_rf dir)
  @@ fun () ->
  Cache.set_global (Some store);
  let pass project =
    let b = Cache.stats store in
    let inv0 = Telemetry.counter "cache.invalidate" in
    let t0 = Telemetry.now_us () in
    ignore
      (Iso26262.Audit.run ~seed:!bench_seed ~specs ~project
         ~open_vs_closed:ratios ());
    let ms = (Telemetry.now_us () -. t0) /. 1e3 in
    let a = Cache.stats store in
    ( ms,
      a.Cache.hits - b.Cache.hits,
      a.Cache.misses - b.Cache.misses,
      Telemetry.counter "cache.invalidate" - inv0 )
  in
  let cold_ms, cold_hits, cold_misses, _ = pass project in
  let warm_ms, warm_hits, warm_misses, _ = pass project in
  let edit_ms, edit_hits, edit_misses, edit_inv = pass edited in
  Telemetry.set_gauge "bench.incremental.cold_ms" cold_ms;
  Telemetry.set_gauge "bench.incremental.warm_ms" warm_ms;
  Telemetry.set_gauge "bench.incremental.edit_ms" edit_ms;
  Telemetry.set_gauge "bench.incremental.cold_misses" (float_of_int cold_misses);
  Telemetry.set_gauge "bench.incremental.warm_misses" (float_of_int warm_misses);
  Telemetry.set_gauge "bench.incremental.edit_misses" (float_of_int edit_misses);
  Telemetry.set_gauge "bench.incremental.edit_invalidated" (float_of_int edit_inv);
  let tbl =
    Util.Table.make ~title:"audit wall time and cache traffic per pass"
      ~header:[ "pass"; "wall"; "hits"; "misses"; "invalidated" ]
      ~aligns:
        [ Util.Table.Left; Util.Table.Right; Util.Table.Right;
          Util.Table.Right; Util.Table.Right ]
      ()
  in
  let row tbl name ms hits misses inv =
    Util.Table.add_row tbl
      [ name; Printf.sprintf "%.1f ms" ms; string_of_int hits;
        string_of_int misses; string_of_int inv ]
  in
  let tbl = row tbl "cold (empty store)" cold_ms cold_hits cold_misses 0 in
  let tbl = row tbl "warm (same tree)" warm_ms warm_hits warm_misses 0 in
  let tbl = row tbl "one-file edit" edit_ms edit_hits edit_misses edit_inv in
  print_string (Util.Table.render tbl);
  Printf.printf
    "\none-file edit recomputes %d artifact(s) vs %d cold (%.0f%% served warm)\n"
    edit_misses cold_misses
    (100.0
    *. float_of_int edit_hits
    /. Float.max 1.0 (float_of_int (edit_hits + edit_misses)))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure            *)
(* ------------------------------------------------------------------ *)

let small_project = lazy (Corpus.Generator.generate ~seed:7 Corpus.Apollo_profile.small)
let small_parsed = lazy (Cfront.Project.parse (Lazy.force small_project))
let small_metrics = lazy (Iso26262.Project_metrics.of_parsed (Lazy.force small_parsed))
let yolo_tus = lazy (Corpus.Yolo_src.parse_all ())
let stencil_tus = lazy (Corpus.Stencil_src.parse_all ())

let micro_tests () =
  let open Bechamel in
  let m = Lazy.force small_metrics in
  let parsed = Lazy.force small_parsed in
  let one_file =
    match Cfront.Project.all_files (Lazy.force small_project) with
    | f :: _ -> f.Cfront.Project.content
    | [] -> ""
  in
  [
    (* table1: the coding-guideline assessment pass *)
    Test.make ~name:"table1/assess-coding"
      (Staged.stage (fun () -> Iso26262.Assess.assess_coding m));
    (* table2: architecture metrics (call graph + coupling) *)
    Test.make ~name:"table2/architecture"
      (Staged.stage (fun () -> Metrics.Architecture.build ~parsed));
    (* table3: unit-design assessment *)
    Test.make ~name:"table3/assess-unit"
      (Staged.stage (fun () -> Iso26262.Assess.assess_unit_design m));
    (* fig3: lex+parse+complexity over one generated file *)
    Test.make ~name:"fig3/parse-and-cc"
      (Staged.stage (fun () ->
           let tu = Cfront.Parser.parse_file ~file:"bench.cc" one_file in
           Metrics.Complexity.of_functions (Cfront.Ast.functions_of_tu tu)));
    (* fig4: CUDA census *)
    Test.make ~name:"fig4/cuda-census"
      (Staged.stage (fun () ->
           Cudasim.Census.of_files parsed.Cfront.Project.files));
    (* fig5: interpreted YOLO inference scenario under coverage *)
    Test.make ~name:"fig5/yolo-coverage-run"
      (Staged.stage (fun () ->
           let measured = List.map fst Corpus.Yolo_src.measured_files in
           Cudasim.Runner.run ~entry:Corpus.Yolo_src.entry ~measured
             (Lazy.force yolo_tus)));
    (* fig6: stencils on CPU *)
    Test.make ~name:"fig6/stencil-run"
      (Staged.stage (fun () ->
           let measured = List.map fst Corpus.Stencil_src.measured_files in
           Cudasim.Runner.run ~entry:Corpus.Stencil_src.entry ~measured
             (Lazy.force stencil_tus)));
    (* fig7: whole-network timing under six libraries *)
    Test.make ~name:"fig7/yolo-perf-model"
      (Staged.stage (fun () -> Gpuperf.Yolo_bench.run ~gpu ~cpu ()));
    (* fig8a / fig8b: library comparison sweeps *)
    Test.make ~name:"fig8a/gemm-sweep"
      (Staged.stage (fun () -> Gpuperf.Suites.gemm_comparison ~device:gpu));
    Test.make ~name:"fig8b/conv-sweep"
      (Staged.stage (fun () -> Gpuperf.Suites.conv_comparison ~device:gpu));
    (* observations: MISRA engine over the small corpus *)
    Test.make ~name:"observations/misra-pass"
      (Staged.stage (fun () ->
           Misra.Registry.run (Misra.Rule.build_context parsed)));
  ]

let run_micro () =
  heading "Bechamel micro-benchmarks of the analysis kernels";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let tests = micro_tests () in
  let tbl =
    Util.Table.make ~title:"estimated time per run (OLS on monotonic clock)"
      ~header:[ "benchmark"; "time/run" ]
      ~aligns:[ Util.Table.Left; Util.Table.Right ] ()
  in
  let tbl =
    List.fold_left
      (fun tbl test ->
        let raw = Benchmark.all cfg instances test in
        let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
        Hashtbl.fold
          (fun name ols_result tbl ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (e :: _) -> e
              | _ -> nan
            in
            let human =
              if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            Util.Table.add_row tbl [ name; human ])
          results tbl)
      tbl tests
  in
  print_string (Util.Table.render tbl)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig8a", run_fig8a);
    ("fig8b", run_fig8b);
    ("observations", run_observations);
    ("fig1", run_fig1);
    ("fig2", run_fig2);
    ("halstead", run_halstead);
    ("brook", run_brook);
    ("ablations", run_ablations);
    ("wcet", run_wcet);
    ("frameworks", run_frameworks);
    ("faults", run_faults);
    ("testgen", run_testgen);
    ("traceability", run_traceability);
    ("scheduling", run_scheduling);
    ("scenarios", run_scenarios);
    ("compile", run_compile);
    ("interproc", run_interproc);
    ("plan", run_plan);
    ("overhead", run_overhead);
    ("incremental", run_incremental);
    ("micro", run_micro);
  ]

(* ------------------------------------------------------------------ *)
(* Driver: argument parsing, validation, BENCH json                     *)
(* ------------------------------------------------------------------ *)

let valid_names () = String.concat ", " (List.map fst experiments)

let json_int_obj buf kvs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (Telemetry.json_escape k) v))
    kvs;
  Buffer.add_char buf '}'

let write_bench_json ~path ~scale ~seed ~jobs_list results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"adcheck-bench/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": \"%s\",\n"
       (match scale with `Full -> "full" | `Small -> "small"));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": [%s],\n"
       (String.concat "," (List.map string_of_int jobs_list)));
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"experiments\": [";
  List.iteri
    (fun i (name, jobs, wall_ms, counters) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"jobs\": %d, \"wall_ms\": %.3f, \"counters\": "
           (Telemetry.json_escape name) jobs wall_ms);
      json_int_obj buf counters;
      Buffer.add_char buf '}')
    results;
  Buffer.add_string buf "\n  ],\n  \"counters\": ";
  json_int_obj buf (Telemetry.counters ());
  Buffer.add_string buf ",\n  \"gauges\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%g" (Telemetry.json_escape k) v))
    (Telemetry.gauges ());
  Buffer.add_string buf "}\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let out = ref None in
  let metrics_out = ref None in
  let jobs_list = ref [ Util.Pool.default_jobs () ] in
  let names = ref [] in
  let usage_fail fmt =
    Printf.ksprintf
      (fun msg ->
        Util.Log.error "%s" msg;
        exit 2)
      fmt
  in
  let rec parse_args = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      (match v with
       | "small" -> bench_scale := `Small
       | "full" -> bench_scale := `Full
       | _ -> usage_fail "unknown scale %s (valid: small, full)" v);
      parse_args rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n -> bench_seed := n
       | None -> usage_fail "--seed expects an integer, got %s" v);
      parse_args rest
    | "--out" :: v :: rest ->
      out := Some v;
      parse_args rest
    | "--metrics" :: v :: rest ->
      metrics_out := Some v;
      parse_args rest
    | "--jobs" :: v :: rest ->
      (match
         List.map int_of_string_opt (String.split_on_char ',' v)
         |> List.fold_left
              (fun acc j ->
                match (acc, j) with
                | Some js, Some j when j >= 1 -> Some (j :: js)
                | _ -> None)
              (Some [])
       with
       | Some (_ :: _ as js) -> jobs_list := List.rev js
       | _ -> usage_fail "--jobs expects a comma-separated list of ints >= 1, got %s" v);
      parse_args rest
    | [ ("--scale" | "--seed" | "--out" | "--jobs" | "--metrics") as flag ] ->
      usage_fail "%s expects an argument" flag
    | opt :: _ when String.length opt >= 2 && String.sub opt 0 2 = "--" ->
      usage_fail
        "unknown option %s (valid: --scale, --seed, --jobs, --out, --metrics)"
        opt
    | name :: rest ->
      names := name :: !names;
      parse_args rest
  in
  parse_args args;
  let selected = if !names = [] then List.map fst experiments else List.rev !names in
  (* validate every requested name before running anything *)
  (match List.filter (fun n -> not (List.mem_assoc n experiments)) selected with
   | [] -> ()
   | unknown ->
     usage_fail "unknown experiment%s %s (valid: %s)"
       (if List.length unknown > 1 then "s" else "")
       (String.concat ", " unknown) (valid_names ()));
  if !out <> None || !metrics_out <> None then Telemetry.set_enabled true;
  (* One pass per --jobs value, each against a fresh audit so the sweep
     actually exercises the parallel stages rather than reusing the
     first pass's cached artifacts.  Counter deltas come from the
     snapshot/diff API, so concurrently-running experiments can't bleed
     into one another's attribution. *)
  let results =
    List.concat_map
      (fun jobs ->
        Util.Pool.set_default_jobs jobs;
        reset_audit ();
        List.map
          (fun name ->
            let run = List.assoc name experiments in
            let before = Telemetry.snapshot_counters () in
            let t0 = Telemetry.now_us () in
            Telemetry.with_span ~cat:"bench" ("bench." ^ name) run;
            let wall_ms = (Telemetry.now_us () -. t0) /. 1e3 in
            Util.Log.info "%s (jobs=%d): %.1f ms" name jobs wall_ms;
            (name, jobs, wall_ms, Telemetry.counters_since before))
          selected)
      !jobs_list
  in
  (match !out with
   | None -> ()
   | Some path ->
     write_bench_json ~path ~scale:!bench_scale ~seed:!bench_seed
       ~jobs_list:!jobs_list results;
     Util.Log.info "wrote %s" path);
  match !metrics_out with
  | None -> ()
  | Some path ->
    Telemetry.write_metrics ~path ();
    Util.Log.info "wrote %s" path
